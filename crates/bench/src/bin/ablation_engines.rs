//! **Ablation E — diffusion engines.** Compares dense power iteration,
//! per-source decomposition and the forward-push residual engine on the
//! same workloads: wall-clock, work counters, and max-abs deviation from a
//! tight-tolerance reference. This is the measurement behind the
//! `DiffusionEngine::Auto` crossover model (push for very sparse
//! personalizations on large graphs) and the push-vs-power speedups
//! recorded in `CHANGES.md`.
//!
//! ```text
//! cargo run -p gdsearch-bench --release --bin ablation_engines -- \
//!     --nodes 10000 --dim 8 --sources 4 --alpha 0.5 --tolerance 1e-5 \
//!     --threads 4 --repeats 3
//! ```

// Harness code: wall-clock timing is the measurement itself.
#![allow(clippy::disallowed_methods)]

use std::time::Instant;

use gdsearch_bench::Args;
use gdsearch_diffusion::push::{self, PushConfig};
use gdsearch_diffusion::{per_source, power, PprConfig, Signal};
use gdsearch_embed::Embedding;
use gdsearch_graph::{generators, Graph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runs `f` `repeats` times and returns (best wall-clock in ms, last output).
fn timed<T>(repeats: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..repeats.max(1) {
        let t0 = Instant::now();
        let value = f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        out = Some(value);
    }
    (best, out.expect("at least one repeat"))
}

fn print_row(name: &str, ms: f64, baseline_ms: f64, err: f32, extra: &str) {
    println!(
        "| {name} | {ms:.2} | {:.2}x | {err:.2e} | {extra} |",
        baseline_ms / ms
    );
}

fn main() {
    let args = Args::from_env();
    let nodes: u32 = args.get_or("nodes", 10_000);
    let dim: usize = args.get_or("dim", 8);
    let num_sources: usize = args.get_or("sources", 4);
    let alpha: f32 = args.get_or("alpha", 0.5);
    let tolerance: f32 = args.get_or("tolerance", 1e-5);
    let threads: usize = args.get_or("threads", 4);
    let repeats: usize = args.get_or("repeats", 3);
    let seed: u64 = args.get_or("seed", 2022);

    let mut rng = StdRng::seed_from_u64(seed);
    let graph: Graph =
        generators::barabasi_albert(nodes, 5, &mut rng).expect("valid generator parameters");
    let cfg = PprConfig::new(alpha)
        .unwrap()
        .with_tolerance(tolerance)
        .unwrap();
    // Reference at 100× tighter tolerance: deviations below `tolerance`
    // from it certify engine interchangeability.
    let tight = cfg.with_tolerance((tolerance * 1e-2).max(1e-7)).unwrap();
    println!(
        "# Ablation: diffusion engines — N = {nodes} (Barabási–Albert m=5, {} edges), \
         alpha = {alpha}, tolerance = {tolerance:.0e}",
        graph.num_edges()
    );

    // ---- Workload A: single-source PPR column --------------------------
    let source = NodeId::new(17);
    let reference = per_source::ppr_vector(&graph, source, &tight).unwrap();
    let max_err = |h: &[f32]| -> f32 {
        h.iter()
            .zip(&reference)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    };
    println!("\n## Single-source column (source = {source})");
    println!("| engine | best ms | vs power | max err | work |");
    println!("|---|---|---|---|---|");
    let mut e0 = Signal::zeros(nodes as usize, 1);
    e0.row_mut(source.index())[0] = 1.0;
    let (power_ms, power_out) = timed(repeats, || power::diffuse(&graph, &e0, &cfg).unwrap());
    let power_col: Vec<f32> = (0..nodes as usize)
        .map(|u| power_out.signal.row(u)[0])
        .collect();
    print_row(
        "power (dense)",
        power_ms,
        power_ms,
        max_err(&power_col),
        &format!("{} sweeps", power_out.iterations),
    );
    let (scalar_ms, scalar_out) = timed(repeats, || {
        per_source::ppr_vector(&graph, source, &cfg).unwrap()
    });
    print_row(
        "per-source (scalar sweeps)",
        scalar_ms,
        power_ms,
        max_err(&scalar_out),
        "-",
    );
    let push_cfg = PushConfig::new(cfg);
    let (push_ms, push_out) = timed(repeats, || {
        push::ppr_vector_detailed(&graph, source, &push_cfg).unwrap()
    });
    print_row(
        "push (forward residual)",
        push_ms,
        power_ms,
        max_err(&push_out.values),
        &format!(
            "{} pushes, {} drains, bound {:.1e}",
            push_out.pushes, push_out.drains, push_out.residual_bound
        ),
    );

    // ---- Workload B: sparse multi-source batch -------------------------
    let sources: Vec<(NodeId, Embedding)> = (0..num_sources)
        .map(|_| {
            (
                NodeId::new(rng.random_range(0..nodes)),
                Embedding::new((0..dim).map(|_| rng.random::<f32>()).collect()),
            )
        })
        .collect();
    let batch_reference = per_source::diffuse_sparse(&graph, dim, &sources, &tight).unwrap();
    println!(
        "\n## Batch: {num_sources} sources × dim {dim} (the paper's sparse-personalization shape)"
    );
    println!("| engine | best ms | vs power | max err | work |");
    println!("|---|---|---|---|---|");
    let e0 = Signal::from_sparse_rows(nodes as usize, dim, &sources).unwrap();
    let (bpower_ms, bpower_out) = timed(repeats, || power::diffuse(&graph, &e0, &cfg).unwrap());
    print_row(
        "power (dense)",
        bpower_ms,
        bpower_ms,
        bpower_out.signal.max_abs_diff(&batch_reference).unwrap(),
        &format!("{} sweeps", bpower_out.iterations),
    );
    let (bpowern_ms, bpowern_out) = timed(repeats, || {
        power::diffuse_threaded(&graph, &e0, &cfg, threads).unwrap()
    });
    print_row(
        &format!("power ×{threads} threads"),
        bpowern_ms,
        bpower_ms,
        bpowern_out.signal.max_abs_diff(&batch_reference).unwrap(),
        &format!(
            "identical to ×1: {}",
            if bpowern_out.signal == bpower_out.signal {
                "yes"
            } else {
                "NO"
            }
        ),
    );
    let (bscalar_ms, bscalar_out) = timed(repeats, || {
        per_source::diffuse_sparse(&graph, dim, &sources, &cfg).unwrap()
    });
    print_row(
        "per-source (scalar sweeps)",
        bscalar_ms,
        bpower_ms,
        bscalar_out.max_abs_diff(&batch_reference).unwrap(),
        "-",
    );
    let (bpush1_ms, bpush1_out) = timed(repeats, || {
        push::diffuse_sparse(&graph, dim, &sources, &push_cfg).unwrap()
    });
    print_row(
        "push ×1 thread",
        bpush1_ms,
        bpower_ms,
        bpush1_out.max_abs_diff(&batch_reference).unwrap(),
        "-",
    );
    let push_mt = push_cfg.with_threads(threads).unwrap();
    let (bpushn_ms, bpushn_out) = timed(repeats, || {
        push::diffuse_sparse(&graph, dim, &sources, &push_mt).unwrap()
    });
    print_row(
        &format!("push ×{threads} threads"),
        bpushn_ms,
        bpower_ms,
        bpushn_out.max_abs_diff(&batch_reference).unwrap(),
        &format!(
            "identical to ×1: {}",
            if bpushn_out == bpush1_out {
                "yes"
            } else {
                "NO"
            }
        ),
    );
}
