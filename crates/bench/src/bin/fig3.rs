//! Reproduces **Fig. 3** of the paper: hit accuracy vs. query-to-gold
//! distance, per document count `M` and teleport probability `α`.
//!
//! ```text
//! cargo run -p gdsearch-bench --release --bin fig3                 # all four subplots
//! cargo run -p gdsearch-bench --release --bin fig3 -- --docs 1000  # one subplot
//! cargo run -p gdsearch-bench --release --bin fig3 -- \
//!     --iterations 100 --alphas 0.1,0.5,0.9 --dim 64 --seed 2022 \
//!     --csv target/fig3.csv
//! ```
//!
//! With `--graph path/to/facebook_combined.txt` the real SNAP graph is
//! used instead of the calibrated synthetic one.

// Harness code: wall-clock timing is progress reporting, not a result.
#![allow(clippy::disallowed_methods)]

use gdsearch::experiment::{accuracy, report};
use gdsearch::SchemeConfig;
use gdsearch_bench::{maybe_write_csv, workbench_from_args, Args};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::from_env();
    let doc_counts: Vec<usize> = match args.get("docs") {
        Some(_) => vec![args.get_or("docs", 10)],
        None => vec![10, 100, 1000, 10_000],
    };
    let alphas: Vec<f32> = args.get_list_or("alphas", &[0.1, 0.5, 0.9]);
    let iterations: usize = args.get_or("iterations", 50);
    let max_distance: u32 = args.get_or("max-distance", 8);
    let ttl: u32 = args.get_or("ttl", 50);
    let seed: u64 = args.get_or("seed", 2022);

    let max_docs = doc_counts.iter().copied().max().unwrap_or(10);
    let workbench = match workbench_from_args(&args, max_docs + 2000) {
        Ok(wb) => wb,
        Err(e) => {
            eprintln!("failed to build workbench: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "# Fig. 3 reproduction — graph: {} nodes / {} edges, corpus: {} words ({}-d), {} query pairs",
        workbench.graph.num_nodes(),
        workbench.graph.num_edges(),
        workbench.corpus.len(),
        workbench.corpus.dim(),
        workbench.queries.len()
    );
    println!("# iterations = {iterations}, ttl = {ttl}, alphas = {alphas:?}, seed = {seed}\n");

    let base = SchemeConfig::builder()
        .ttl(ttl)
        .build()
        .expect("ttl flag must be positive");
    let mut csv = String::new();
    for (i, &docs) in doc_counts.iter().enumerate() {
        let cfg = accuracy::AccuracyConfig {
            total_docs: docs,
            alphas: alphas.clone(),
            max_distance,
            iterations,
        };
        // Independent stream per subplot so adding one subplot does not
        // shift the others.
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(i as u64));
        let started = std::time::Instant::now();
        match accuracy::run(&workbench, &cfg, &base, &mut rng) {
            Ok(result) => {
                println!("{}", report::accuracy_markdown(&result));
                println!(
                    "_({} placements in {:.1}s)_\n",
                    iterations,
                    started.elapsed().as_secs_f64()
                );
                if csv.is_empty() {
                    csv = report::accuracy_csv(&result);
                } else {
                    // Skip the duplicate header on subsequent subplots.
                    let body = report::accuracy_csv(&result);
                    csv.push_str(body.split_once('\n').map(|(_, b)| b).unwrap_or(""));
                }
            }
            Err(e) => {
                eprintln!("subplot M = {docs} failed: {e}");
                std::process::exit(1);
            }
        }
    }
    maybe_write_csv(&args, &csv);
}
