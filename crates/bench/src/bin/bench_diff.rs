//! **bench_diff — the perf-regression gate.** Diffs two
//! `gdsearch.bench.v1` reports (`obs::regress` does the comparison) and
//! exits nonzero when the current report regressed past the tolerance
//! bands, so CI's `perf-trajectory` job can compare fresh artifacts
//! against the committed `BENCH_*.json` baselines instead of merely
//! uploading them.
//!
//! ```text
//! cargo run -p gdsearch-bench --bin bench_diff -- \
//!     --baseline BENCH_engines.json --current target/BENCH_engines.json \
//!     [--wall-rel 0.5] [--work-rel 0.05]
//! ```
//!
//! Exit codes: `0` no regression, `1` regression or missing
//! rows/metrics, `2` unreadable or schema-invalid input.

use gdsearch_bench::Args;
use gdsearch_obs::regress::{diff_reports, DiffConfig};

fn main() {
    let args = Args::from_env();
    let Some(baseline_path) = args.get("baseline") else {
        eprintln!("usage: bench_diff --baseline OLD.json --current NEW.json");
        std::process::exit(2);
    };
    let Some(current_path) = args.get("current") else {
        eprintln!("usage: bench_diff --baseline OLD.json --current NEW.json");
        std::process::exit(2);
    };
    let cfg = DiffConfig {
        wall_rel: args.get_or("wall-rel", DiffConfig::default().wall_rel),
        work_rel: args.get_or("work-rel", DiffConfig::default().work_rel),
    };
    let read = |path: &str| -> String {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        })
    };
    let baseline = read(baseline_path);
    let current = read(current_path);
    let diff = match diff_reports(&baseline, &current, &cfg) {
        Ok(diff) => diff,
        Err(e) => {
            eprintln!("cannot compare: {e}");
            std::process::exit(2);
        }
    };
    println!(
        "# bench_diff — {baseline_path} -> {current_path} \
         (wall band {:.0}%, work band {:.0}%)\n",
        cfg.wall_rel * 100.0,
        cfg.work_rel * 100.0
    );
    print!("{}", diff.to_markdown());
    if diff.is_regression() {
        std::process::exit(1);
    }
}
