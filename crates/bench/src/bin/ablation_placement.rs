//! **Ablation D — document distribution.** The paper's conclusion
//! conjectures that realistic, spatially-correlated document distributions
//! "are expected to aid diffusion" (§V-B). This binary tests the
//! conjecture: uniform placement vs. topic-correlated placement at several
//! locality strengths.
//!
//! ```text
//! cargo run -p gdsearch-bench --release --bin ablation_placement -- \
//!     --docs 200 --iterations 30 --queries 10 --localities 0.0,0.5,0.9
//! ```

use gdsearch::{Placement, SchemeConfig};
use gdsearch_bench::{maybe_write_json, sweep_row, uniform_query_sweep, workbench_from_args, Args};
use gdsearch_obs::bench::{BenchReport, BenchRow};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::from_env();
    let docs: usize = args.get_or("docs", 200);
    let iterations: usize = args.get_or("iterations", 30);
    let queries: usize = args.get_or("queries", 10);
    let localities: Vec<f64> = args.get_list_or("localities", &[0.0, 0.5, 0.9]);
    let radius: u32 = args.get_or("radius", 1);
    let ttl: u32 = args.get_or("ttl", 50);
    let alpha: f32 = args.get_or("alpha", 0.5);
    let seed: u64 = args.get_or("seed", 2022);

    let workbench = match workbench_from_args(&args, docs + 2000) {
        Ok(wb) => wb,
        Err(e) => {
            eprintln!("failed to build workbench: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "# Ablation: document distribution — M = {docs}, alpha = {alpha}, ttl = {ttl}, radius = {radius}"
    );
    println!("| placement | success rate | mean hops to gold |");
    println!("|---|---|---|");
    let mut report = BenchReport::new("ablation_placement");
    report
        .meta("seed", seed)
        .meta("docs", docs)
        .meta("iterations", iterations)
        .meta("queries", queries)
        .meta("ttl", ttl)
        .meta("alpha", alpha)
        .meta("radius", radius);

    let config = SchemeConfig::builder()
        .alpha(alpha)
        .ttl(ttl)
        .build()
        .expect("valid configuration");

    // Uniform baseline.
    let mut rng = StdRng::seed_from_u64(seed);
    let uniform = uniform_query_sweep(
        &workbench,
        &config,
        docs,
        iterations,
        queries,
        &mut rng,
        |wb, words, r| Placement::uniform(&wb.graph, words, r),
    )
    .unwrap_or_else(|e| {
        eprintln!("uniform placement failed: {e}");
        std::process::exit(1);
    });
    println!(
        "| uniform (paper) | {:.3} ({}/{}) | {} |",
        uniform.success_rate(),
        uniform.successes,
        uniform.samples,
        uniform
            .mean_success_hops()
            .map(|h| format!("{h:.2}"))
            .unwrap_or_else(|| "–".into()),
    );
    report.push_row(sweep_row(
        BenchRow::new()
            .label("placement", "uniform")
            .value("locality", 0.0),
        &uniform,
    ));

    for locality in localities {
        if locality == 0.0 {
            continue; // identical to uniform
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let outcome = uniform_query_sweep(
            &workbench,
            &config,
            docs,
            iterations,
            queries,
            &mut rng,
            |wb, words, r| {
                Placement::topic_correlated(&wb.graph, &wb.corpus, words, locality, radius, r)
            },
        )
        .unwrap_or_else(|e| {
            eprintln!("correlated placement (locality {locality}) failed: {e}");
            std::process::exit(1);
        });
        println!(
            "| correlated, locality {locality} | {:.3} ({}/{}) | {} |",
            outcome.success_rate(),
            outcome.successes,
            outcome.samples,
            outcome
                .mean_success_hops()
                .map(|h| format!("{h:.2}"))
                .unwrap_or_else(|| "–".into()),
        );
        report.push_row(sweep_row(
            BenchRow::new()
                .label("placement", "correlated")
                .value("locality", locality),
            &outcome,
        ));
    }
    maybe_write_json(&args, "BENCH_placement.json", &report);
}
