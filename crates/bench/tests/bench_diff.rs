//! Exit-code contract of the `bench_diff` gate: 0 on self-diff, 1 on an
//! injected regression or missing coverage, 2 on garbage input.

use std::process::Command;

fn write(name: &str, text: &str) -> String {
    let path = std::env::temp_dir().join(name);
    std::fs::write(&path, text).expect("temp file writes");
    path.to_string_lossy().to_string()
}

fn report(wall_ms: f64, pushes: f64) -> String {
    format!(
        r#"{{
  "schema": "gdsearch.bench.v1",
  "bin": "ablation_x",
  "meta": {{"seed": "2022"}},
  "rows": [
    {{"labels": {{"engine": "push"}}, "values": {{"wall_ms": {wall_ms}, "pushes": {pushes}}}}}
  ]
}}"#
    )
}

fn run(baseline: &str, current: &str) -> i32 {
    Command::new(env!("CARGO_BIN_EXE_bench_diff"))
        .args(["--baseline", baseline, "--current", current])
        .output()
        .expect("bench_diff runs")
        .status
        .code()
        .expect("bench_diff exits")
}

#[test]
fn self_diff_exits_zero() {
    let base = write("bench_diff_self.json", &report(10.0, 1000.0));
    assert_eq!(run(&base, &base), 0);
}

#[test]
fn injected_regression_exits_one() {
    let base = write("bench_diff_base.json", &report(10.0, 1000.0));
    // 3x the deterministic work: far outside the 5% work band.
    let bad = write("bench_diff_bad.json", &report(10.0, 3000.0));
    assert_eq!(run(&base, &bad), 1);
}

#[test]
fn wall_noise_within_band_exits_zero() {
    let base = write("bench_diff_wall_base.json", &report(10.0, 1000.0));
    let noisy = write("bench_diff_wall_noisy.json", &report(13.0, 1000.0));
    assert_eq!(run(&base, &noisy), 0);
}

#[test]
fn garbage_input_exits_two() {
    let base = write("bench_diff_ok.json", &report(10.0, 1000.0));
    let junk = write("bench_diff_junk.json", "not json");
    assert_eq!(run(&base, &junk), 2);
    assert_eq!(run(&base, "/nonexistent/path.json"), 2);
}
