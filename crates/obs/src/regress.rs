//! Perf-regression gate over `gdsearch.bench.v1` reports.
//!
//! [`diff_reports`] compares a *current* report against a *baseline*
//! row by row (rows are matched on their full label set, order
//! independent) and metric by metric, applying per-metric tolerance
//! bands from a [`DiffConfig`]:
//!
//! - **Wall-clock-ish metrics** (name contains `wall`, `latency`,
//!   `qps`, or a `_ms`/`_us`/`_ns` unit suffix) are noisy on shared CI
//!   runners, so they get the wide [`DiffConfig::wall_rel`] band.
//! - **Work metrics** (pushes, hops, bytes, ticks, recall, ...) are
//!   deterministic and get the tight [`DiffConfig::work_rel`] band —
//!   effectively "did the algorithm start doing more work".
//!
//! Direction matters: for most metrics *higher* is worse (time, work,
//! bytes); for throughput-/quality-like metrics (`qps`, `recall`,
//! `success`, `hit`, `rate`, `ratio`, `throughput`) *lower* is worse.
//! Rows or metrics present in the baseline but missing from the current
//! report also fail the gate — a silently dropped measurement must not
//! pass as an improvement. Rows *added* by the current report are
//! ignored: growing coverage is not a regression.
//!
//! The `bench_diff` binary is a thin CLI over this module and is what
//! CI's `perf-trajectory` job runs against the committed `BENCH_*.json`
//! baselines.

use crate::bench;
use crate::json::{self, Value};

/// Relative tolerance bands for [`diff_reports`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiffConfig {
    /// Allowed relative change for wall-clock-ish metrics (default
    /// `0.5`: +50% slower / -33% throughput before failing — CI runners
    /// are noisy).
    pub wall_rel: f64,
    /// Allowed relative change for deterministic work metrics (default
    /// `0.05`).
    pub work_rel: f64,
}

impl Default for DiffConfig {
    fn default() -> Self {
        DiffConfig {
            wall_rel: 0.5,
            work_rel: 0.05,
        }
    }
}

/// Which way a metric degrades.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Time, work, bytes: an increase is a regression.
    HigherIsWorse,
    /// Throughput and quality: a decrease is a regression.
    LowerIsWorse,
}

/// Classifies a metric name as wall-clock-ish (noisy) or deterministic
/// work. Tick- and second-denominated *virtual* time counts are work:
/// the simulator clock is deterministic.
#[must_use]
pub fn is_wallish(name: &str) -> bool {
    ["wall", "latency", "qps", "_ms", "_us", "_ns"]
        .iter()
        .any(|m| name.contains(m))
}

/// The degradation direction for a metric name.
#[must_use]
pub fn direction(name: &str) -> Direction {
    let lower_is_worse = [
        "qps",
        "recall",
        "success",
        "rate",
        "ratio",
        "hit",
        "throughput",
    ];
    if lower_is_worse.iter().any(|m| name.contains(m)) {
        Direction::LowerIsWorse
    } else {
        Direction::HigherIsWorse
    }
}

/// One failed tolerance check.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// The row's label key (`k=v,k=v`, sorted by key).
    pub row: String,
    /// Metric name inside the row.
    pub metric: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// Relative change in the *worse* direction (`0.07` = 7% worse).
    pub worse_by: f64,
    /// The band that was exceeded.
    pub allowed: f64,
}

/// The outcome of [`diff_reports`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DiffReport {
    /// Number of (row, metric) pairs compared.
    pub compared: usize,
    /// Tolerance-band violations.
    pub regressions: Vec<Regression>,
    /// Baseline row keys absent from the current report.
    pub missing_rows: Vec<String>,
    /// `row / metric` pairs present in the baseline row but absent from
    /// the matching current row.
    pub missing_metrics: Vec<String>,
}

impl DiffReport {
    /// Whether the gate should fail.
    #[must_use]
    pub fn is_regression(&self) -> bool {
        !self.regressions.is_empty()
            || !self.missing_rows.is_empty()
            || !self.missing_metrics.is_empty()
    }

    /// A human-readable summary (markdown-ish, one line per finding).
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut out = format!("compared {} (row, metric) pairs\n", self.compared);
        for r in &self.regressions {
            out.push_str(&format!(
                "- REGRESSION `{}` `{}`: {} -> {} ({:+.1}% worse, band {:.0}%)\n",
                r.row,
                r.metric,
                r.baseline,
                r.current,
                r.worse_by * 100.0,
                r.allowed * 100.0
            ));
        }
        for row in &self.missing_rows {
            out.push_str(&format!("- MISSING ROW `{row}`\n"));
        }
        for m in &self.missing_metrics {
            out.push_str(&format!("- MISSING METRIC `{m}`\n"));
        }
        if !self.is_regression() {
            out.push_str("no regressions\n");
        }
        out
    }
}

/// `(row key, metrics)` pairs extracted from a report's `rows` array.
type Rows = Vec<(String, Vec<(String, f64)>)>;

fn row_key(labels: &[(String, Value)]) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}={}", v.as_str().unwrap_or("?")))
        .collect();
    parts.sort();
    parts.join(",")
}

fn extract_rows(text: &str, which: &str) -> Result<Rows, String> {
    bench::validate(text).map_err(|e| format!("{which} report invalid: {e}"))?;
    let doc = json::parse(text).map_err(|e| format!("{which} report unparsable: {e}"))?;
    let rows = doc
        .get("rows")
        .and_then(Value::as_array)
        .ok_or_else(|| format!("{which} report has no rows"))?;
    let mut out = Vec::with_capacity(rows.len());
    for row in rows {
        let labels = row.get("labels").and_then(Value::as_object).unwrap_or(&[]);
        let values = row.get("values").and_then(Value::as_object).unwrap_or(&[]);
        let metrics: Vec<(String, f64)> = values
            .iter()
            .filter_map(|(k, v)| v.as_f64().map(|n| (k.clone(), n)))
            .collect();
        out.push((row_key(labels), metrics));
    }
    Ok(out)
}

/// How much worse `current` is than `baseline` (relative, `>= 0`), in
/// the metric's degradation direction; `0.0` means no worse. A baseline
/// of zero treats any nonzero degradation as infinitely worse.
fn worse_by(baseline: f64, current: f64, dir: Direction) -> f64 {
    let delta = match dir {
        Direction::HigherIsWorse => current - baseline,
        Direction::LowerIsWorse => baseline - current,
    };
    if delta <= 0.0 {
        0.0
    } else if baseline.abs() < f64::EPSILON {
        f64::INFINITY
    } else {
        delta / baseline.abs()
    }
}

/// Diffs `current` against `baseline` (both `gdsearch.bench.v1` JSON
/// texts) under the tolerance bands in `cfg`.
///
/// # Errors
///
/// Returns an error when either text fails schema validation — the gate
/// distinguishes "cannot compare" (an error) from "compared and found
/// regressions" (an `Ok` report with [`DiffReport::is_regression`]).
pub fn diff_reports(baseline: &str, current: &str, cfg: &DiffConfig) -> Result<DiffReport, String> {
    let base_rows = extract_rows(baseline, "baseline")?;
    let cur_rows = extract_rows(current, "current")?;
    let mut report = DiffReport::default();
    for (key, base_metrics) in &base_rows {
        let Some((_, cur_metrics)) = cur_rows.iter().find(|(k, _)| k == key) else {
            report.missing_rows.push(key.clone());
            continue;
        };
        for (metric, base_val) in base_metrics {
            let Some((_, cur_val)) = cur_metrics.iter().find(|(m, _)| m == metric) else {
                report.missing_metrics.push(format!("{key} / {metric}"));
                continue;
            };
            report.compared += 1;
            let allowed = if is_wallish(metric) {
                cfg.wall_rel
            } else {
                cfg.work_rel
            };
            let worse = worse_by(*base_val, *cur_val, direction(metric));
            if worse > allowed {
                report.regressions.push(Regression {
                    row: key.clone(),
                    metric: metric.clone(),
                    baseline: *base_val,
                    current: *cur_val,
                    worse_by: worse,
                    allowed,
                });
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench::{BenchReport, BenchRow};

    fn report(wall_ms: f64, pushes: f64, qps: f64) -> String {
        let mut r = BenchReport::new("ablation_x");
        r.meta("seed", 2022);
        r.push_row(
            BenchRow::new()
                .label("engine", "push")
                .label("alpha", "0.5")
                .value("wall_ms", wall_ms)
                .value("pushes", pushes)
                .value("qps", qps),
        );
        r.to_json()
    }

    #[test]
    fn self_diff_is_clean() {
        let text = report(10.0, 1000.0, 50.0);
        let diff = diff_reports(&text, &text, &DiffConfig::default()).unwrap();
        assert!(!diff.is_regression(), "{}", diff.to_markdown());
        assert_eq!(diff.compared, 3);
    }

    #[test]
    fn wall_band_is_wide_and_work_band_is_tight() {
        let base = report(10.0, 1000.0, 50.0);
        let cfg = DiffConfig::default();
        // +40% wall time: inside the 50% band.
        let ok = diff_reports(&base, &report(14.0, 1000.0, 50.0), &cfg).unwrap();
        assert!(!ok.is_regression());
        // +10% pushes: outside the 5% work band.
        let bad = diff_reports(&base, &report(10.0, 1100.0, 50.0), &cfg).unwrap();
        assert!(bad.is_regression());
        assert_eq!(bad.regressions.len(), 1);
        assert_eq!(bad.regressions[0].metric, "pushes");
        assert!((bad.regressions[0].worse_by - 0.1).abs() < 1e-9);
    }

    #[test]
    fn throughput_direction_is_inverted() {
        let base = report(10.0, 1000.0, 50.0);
        let cfg = DiffConfig::default();
        // qps doubling is an improvement, not a regression.
        assert!(!diff_reports(&base, &report(10.0, 1000.0, 100.0), &cfg)
            .unwrap()
            .is_regression());
        // qps dropping 60% exceeds the 50% wall band (qps is wall-ish).
        let bad = diff_reports(&base, &report(10.0, 1000.0, 20.0), &cfg).unwrap();
        assert!(bad.is_regression());
        assert_eq!(bad.regressions[0].metric, "qps");
    }

    #[test]
    fn missing_rows_and_metrics_fail_the_gate() {
        let base = report(10.0, 1000.0, 50.0);
        let empty = BenchReport::new("ablation_x").to_json();
        let diff = diff_reports(&base, &empty, &DiffConfig::default()).unwrap();
        assert!(diff.is_regression());
        assert_eq!(diff.missing_rows.len(), 1);
        // A current report with extra rows is fine.
        let grown = {
            let mut r = BenchReport::new("ablation_x");
            r.push_row(
                BenchRow::new()
                    .label("engine", "push")
                    .label("alpha", "0.5")
                    .value("wall_ms", 10.0)
                    .value("pushes", 1000.0)
                    .value("qps", 50.0),
            );
            r.push_row(
                BenchRow::new()
                    .label("engine", "power")
                    .value("wall_ms", 9.0),
            );
            r.to_json()
        };
        assert!(!diff_reports(&base, &grown, &DiffConfig::default())
            .unwrap()
            .is_regression());
    }

    #[test]
    fn label_order_does_not_matter() {
        let base = report(10.0, 1000.0, 50.0);
        let reordered = {
            let mut r = BenchReport::new("ablation_x");
            r.push_row(
                BenchRow::new()
                    .label("alpha", "0.5")
                    .label("engine", "push")
                    .value("wall_ms", 10.0)
                    .value("pushes", 1000.0)
                    .value("qps", 50.0),
            );
            r.to_json()
        };
        let diff = diff_reports(&base, &reordered, &DiffConfig::default()).unwrap();
        assert!(!diff.is_regression(), "{}", diff.to_markdown());
    }

    #[test]
    fn invalid_reports_are_errors_not_regressions() {
        let good = report(10.0, 1000.0, 50.0);
        assert!(diff_reports("not json", &good, &DiffConfig::default()).is_err());
        assert!(diff_reports(&good, "{}", &DiffConfig::default()).is_err());
    }

    #[test]
    fn zero_baseline_degradation_is_infinite() {
        assert_eq!(worse_by(0.0, 1.0, Direction::HigherIsWorse), f64::INFINITY);
        assert_eq!(worse_by(0.0, 0.0, Direction::HigherIsWorse), 0.0);
        assert_eq!(worse_by(5.0, 4.0, Direction::HigherIsWorse), 0.0);
    }
}
