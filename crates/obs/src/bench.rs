//! The `gdsearch.bench.v1` report schema behind every `BENCH_*.json`.
//!
//! A report is built row by row by an `ablation_*` binary and rendered
//! with [`BenchReport::to_json`]; [`validate`] is the machine check CI
//! runs over the emitted artifacts (and over the `BENCH_engines.json`
//! checked into the repo root). The schema is deliberately small and
//! stable:
//!
//! ```json
//! {
//!   "schema": "gdsearch.bench.v1",
//!   "bin": "ablation_engines",
//!   "meta": {"seed": "2022"},
//!   "rows": [
//!     {"labels": {"engine": "push"}, "values": {"wall_ms": 1.5}}
//!   ],
//!   "metrics": { ... },   // optional: a registry export
//!   "spans": [ ... ]      // optional: a span-tree export
//! }
//! ```
//!
//! `labels` values are strings; `values` values are numbers. Anything
//! else fails [`validate`].

use crate::clock::SpanTree;
use crate::export::registry_json;
use crate::json::{self, Value};
use crate::registry::MetricsRegistry;

/// The schema identifier every report carries.
pub const SCHEMA: &str = "gdsearch.bench.v1";

/// One measurement row: string labels identifying the configuration and
/// numeric values measured under it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BenchRow {
    labels: Vec<(String, String)>,
    values: Vec<(String, f64)>,
}

impl BenchRow {
    /// An empty row.
    #[must_use]
    pub fn new() -> Self {
        BenchRow::default()
    }

    /// Adds a configuration label (builder style).
    #[must_use]
    pub fn label(mut self, key: &str, value: impl ToString) -> Self {
        self.labels.push((key.to_string(), value.to_string()));
        self
    }

    /// Adds a measured value (builder style).
    #[must_use]
    pub fn value(mut self, key: &str, value: f64) -> Self {
        self.values.push((key.to_string(), value));
        self
    }
}

/// A full bench report.
#[derive(Debug, Clone, Default)]
pub struct BenchReport {
    bin: String,
    meta: Vec<(String, String)>,
    rows: Vec<BenchRow>,
    metrics: Option<MetricsRegistry>,
    spans: Option<SpanTree>,
}

impl BenchReport {
    /// A report for the binary `bin`.
    #[must_use]
    pub fn new(bin: &str) -> Self {
        BenchReport {
            bin: bin.to_string(),
            ..BenchReport::default()
        }
    }

    /// Attaches a `meta` entry (seed, node count, CLI flags, ...).
    pub fn meta(&mut self, key: &str, value: impl ToString) -> &mut Self {
        self.meta.push((key.to_string(), value.to_string()));
        self
    }

    /// Appends a measurement row.
    pub fn push_row(&mut self, row: BenchRow) -> &mut Self {
        self.rows.push(row);
        self
    }

    /// Attaches a metrics registry, exported under `"metrics"`.
    pub fn attach_metrics(&mut self, registry: MetricsRegistry) -> &mut Self {
        self.metrics = Some(registry);
        self
    }

    /// Attaches a span tree, exported under `"spans"`.
    pub fn attach_spans(&mut self, spans: SpanTree) -> &mut Self {
        self.spans = Some(spans);
        self
    }

    /// Number of rows so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether no rows were pushed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the report as pretty-printed `gdsearch.bench.v1` JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut fields = vec![
            ("schema".to_string(), Value::Str(SCHEMA.to_string())),
            ("bin".to_string(), Value::Str(self.bin.clone())),
            (
                "meta".to_string(),
                Value::Object(
                    self.meta
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::Str(v.clone())))
                        .collect(),
                ),
            ),
            (
                "rows".to_string(),
                Value::Array(
                    self.rows
                        .iter()
                        .map(|row| {
                            Value::Object(vec![
                                (
                                    "labels".to_string(),
                                    Value::Object(
                                        row.labels
                                            .iter()
                                            .map(|(k, v)| (k.clone(), Value::Str(v.clone())))
                                            .collect(),
                                    ),
                                ),
                                (
                                    "values".to_string(),
                                    Value::Object(
                                        row.values
                                            .iter()
                                            .map(|(k, v)| (k.clone(), Value::Num(*v)))
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ];
        if let Some(reg) = &self.metrics {
            fields.push(("metrics".to_string(), registry_json(reg)));
        }
        if let Some(spans) = &self.spans {
            fields.push(("spans".to_string(), spans.to_json()));
        }
        Value::Object(fields).to_json_pretty()
    }
}

/// Validates that `text` is a well-formed `gdsearch.bench.v1` report.
///
/// # Errors
///
/// Returns a one-line description of the first schema violation: not
/// JSON, wrong/missing `schema` tag, missing `bin`/`meta`/`rows`,
/// non-string labels or meta values, non-numeric row values, or
/// malformed optional `metrics`/`spans` sections.
pub fn validate(text: &str) -> Result<(), String> {
    let doc = json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let schema = doc
        .get("schema")
        .and_then(Value::as_str)
        .ok_or("missing `schema` tag")?;
    if schema != SCHEMA {
        return Err(format!("schema is `{schema}`, expected `{SCHEMA}`"));
    }
    let bin = doc
        .get("bin")
        .and_then(Value::as_str)
        .ok_or("missing `bin`")?;
    if bin.is_empty() {
        return Err("`bin` must be non-empty".to_string());
    }
    let meta = doc
        .get("meta")
        .and_then(Value::as_object)
        .ok_or("missing `meta` object")?;
    for (k, v) in meta {
        if v.as_str().is_none() {
            return Err(format!("meta.{k} must be a string"));
        }
    }
    let rows = doc
        .get("rows")
        .and_then(Value::as_array)
        .ok_or("missing `rows` array")?;
    for (i, row) in rows.iter().enumerate() {
        let labels = row
            .get("labels")
            .and_then(Value::as_object)
            .ok_or_else(|| format!("rows[{i}] missing `labels` object"))?;
        for (k, v) in labels {
            if v.as_str().is_none() {
                return Err(format!("rows[{i}].labels.{k} must be a string"));
            }
        }
        let values = row
            .get("values")
            .and_then(Value::as_object)
            .ok_or_else(|| format!("rows[{i}] missing `values` object"))?;
        for (k, v) in values {
            if v.as_f64().is_none() && *v != Value::Null {
                return Err(format!("rows[{i}].values.{k} must be a number"));
            }
        }
    }
    if let Some(metrics) = doc.get("metrics") {
        let fields = metrics.as_object().ok_or("`metrics` must be an object")?;
        for (name, body) in fields {
            if body.get("kind").and_then(Value::as_str).is_none() {
                return Err(format!("metrics.{name} missing `kind`"));
            }
        }
    }
    if let Some(spans) = doc.get("spans") {
        validate_spans(spans, "spans")?;
    }
    Ok(())
}

fn validate_spans(v: &Value, path: &str) -> Result<(), String> {
    let items = v
        .as_array()
        .ok_or_else(|| format!("`{path}` must be an array"))?;
    for (i, span) in items.iter().enumerate() {
        if span.get("name").and_then(Value::as_str).is_none() {
            return Err(format!("{path}[{i}] missing `name`"));
        }
        for key in ["calls", "total_ns", "self_ns"] {
            if span.get(key).and_then(Value::as_f64).is_none() {
                return Err(format!("{path}[{i}] missing numeric `{key}`"));
            }
        }
        if let Some(children) = span.get("children") {
            validate_spans(children, &format!("{path}[{i}].children"))?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::Profiler;

    #[test]
    fn reports_validate_against_their_own_schema() {
        let mut report = BenchReport::new("ablation_engines");
        report.meta("seed", 2022).meta("nodes", 4039);
        report.push_row(
            BenchRow::new()
                .label("engine", "push")
                .label("alpha", "0.5")
                .value("wall_ms", 12.25)
                .value("pushes", 19000.0),
        );
        let mut reg = MetricsRegistry::new();
        reg.add("diffusion.push.pushes", 19000);
        reg.record("hops", 4);
        report.attach_metrics(reg);
        let mut p = Profiler::new();
        let t = p.enter("diffusion");
        p.exit(t);
        report.attach_spans(p.tree());
        let text = report.to_json();
        validate(&text)
            .unwrap_or_else(|e| panic!("self-emitted report must validate: {e}\n{text}"));
        assert!(text.contains("gdsearch.bench.v1"));
    }

    #[test]
    fn validation_rejects_schema_violations() {
        for (bad, why) in [
            ("{}", "missing schema"),
            ("{\"schema\": \"other.v9\"}", "wrong schema"),
            (
                "{\"schema\": \"gdsearch.bench.v1\", \"bin\": \"x\", \"meta\": {}, \"rows\": [{}]}",
                "row without labels",
            ),
            (
                "{\"schema\": \"gdsearch.bench.v1\", \"bin\": \"x\", \"meta\": {}, \
                 \"rows\": [{\"labels\": {\"a\": 1}, \"values\": {}}]}",
                "non-string label",
            ),
            (
                "{\"schema\": \"gdsearch.bench.v1\", \"bin\": \"x\", \"meta\": {}, \
                 \"rows\": [{\"labels\": {}, \"values\": {\"v\": \"fast\"}}]}",
                "non-numeric value",
            ),
            (
                "{\"schema\": \"gdsearch.bench.v1\", \"bin\": \"\", \"meta\": {}, \"rows\": []}",
                "empty bin",
            ),
            ("not json at all", "not JSON"),
        ] {
            assert!(validate(bad).is_err(), "must reject: {why}");
        }
    }

    #[test]
    fn minimal_report_is_valid() {
        let text = BenchReport::new("smoke").to_json();
        validate(&text).unwrap();
    }
}
