//! Renderers: any [`MetricsRegistry`] to markdown, CSV, or JSON.
//!
//! All three walk the registry in its deterministic name order, so
//! repeated exports of the same registry are byte-identical.

use crate::instruments::Histogram;
use crate::json::Value;
use crate::registry::{MetricValue, MetricsRegistry};

/// Renders the registry as a markdown table
/// (`name | kind | value | count | mean | p50 | p99 | p999 | max`).
#[must_use]
pub fn registry_markdown(reg: &MetricsRegistry) -> String {
    let mut out =
        String::from("| metric | kind | value | count | mean | p50 | p99 | p999 | max |\n");
    out.push_str("|---|---|---:|---:|---:|---:|---:|---:|---:|\n");
    for (name, value) in reg.iter() {
        let row = match value {
            MetricValue::Counter(c) => format!("| `{name}` | counter | {c} | | | | | | |\n"),
            MetricValue::Gauge(g) => format!("| `{name}` | gauge | {g} | | | | | | |\n"),
            MetricValue::Histogram(h) => format!(
                "| `{name}` | histogram | | {} | {:.2} | {} | {} | {} | {} |\n",
                h.count(),
                h.mean(),
                h.quantile(0.5),
                h.quantile(0.99),
                h.quantile(0.999),
                h.max()
            ),
            MetricValue::Series(s) => {
                format!("| `{name}` | series | len {} | | | | | | |\n", s.len())
            }
            MetricValue::FloatSeries(s) => {
                format!(
                    "| `{name}` | float-series | len {} | | | | | | |\n",
                    s.len()
                )
            }
        };
        out.push_str(&row);
    }
    out
}

/// Renders the registry as CSV with the header
/// `metric,kind,value,count,sum,mean,p50,p99,p999,max`. Series render
/// one row per sample with the index in the `count` column.
#[must_use]
pub fn registry_csv(reg: &MetricsRegistry) -> String {
    let mut out = String::from("metric,kind,value,count,sum,mean,p50,p99,p999,max\n");
    for (name, value) in reg.iter() {
        match value {
            MetricValue::Counter(c) => {
                out.push_str(&format!("{name},counter,{c},,,,,,,\n"));
            }
            MetricValue::Gauge(g) => {
                out.push_str(&format!("{name},gauge,{g},,,,,,,\n"));
            }
            MetricValue::Histogram(h) => {
                out.push_str(&format!(
                    "{name},histogram,,{},{},{:.6},{},{},{},{}\n",
                    h.count(),
                    h.sum(),
                    h.mean(),
                    h.quantile(0.5),
                    h.quantile(0.99),
                    h.quantile(0.999),
                    h.max()
                ));
            }
            MetricValue::Series(s) => {
                for (i, v) in s.iter().enumerate() {
                    out.push_str(&format!("{name},series,{v},{i},,,,,,\n"));
                }
            }
            MetricValue::FloatSeries(s) => {
                for (i, v) in s.iter().enumerate() {
                    out.push_str(&format!("{name},float-series,{v},{i},,,,,,\n"));
                }
            }
        }
    }
    out
}

/// One histogram as a JSON object (summary plus non-empty buckets).
#[must_use]
pub fn histogram_json(h: &Histogram) -> Value {
    Value::Object(vec![
        ("count".to_string(), Value::UInt(h.count())),
        ("sum".to_string(), Value::UInt(h.sum())),
        ("max".to_string(), Value::UInt(h.max())),
        ("mean".to_string(), Value::Num(h.mean())),
        ("p50".to_string(), Value::UInt(h.quantile(0.5))),
        ("p99".to_string(), Value::UInt(h.quantile(0.99))),
        ("p999".to_string(), Value::UInt(h.quantile(0.999))),
        (
            "buckets".to_string(),
            Value::Array(
                h.nonzero_buckets()
                    .map(|(lo, hi, c)| {
                        Value::Object(vec![
                            ("lo".to_string(), Value::UInt(lo)),
                            ("hi".to_string(), Value::UInt(hi)),
                            ("count".to_string(), Value::UInt(c)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// The registry as a JSON object: metric name to
/// `{"kind": ..., "value"/"summary": ...}` objects, in name order.
#[must_use]
pub fn registry_json(reg: &MetricsRegistry) -> Value {
    let mut fields = Vec::new();
    for (name, value) in reg.iter() {
        let body = match value {
            MetricValue::Counter(c) => Value::Object(vec![
                ("kind".to_string(), Value::Str("counter".to_string())),
                ("value".to_string(), Value::UInt(*c)),
            ]),
            MetricValue::Gauge(g) => Value::Object(vec![
                ("kind".to_string(), Value::Str("gauge".to_string())),
                ("value".to_string(), Value::UInt(*g)),
            ]),
            MetricValue::Histogram(h) => Value::Object(vec![
                ("kind".to_string(), Value::Str("histogram".to_string())),
                ("summary".to_string(), histogram_json(h)),
            ]),
            MetricValue::Series(s) => Value::Object(vec![
                ("kind".to_string(), Value::Str("series".to_string())),
                (
                    "value".to_string(),
                    Value::Array(s.iter().map(|v| Value::UInt(*v)).collect()),
                ),
            ]),
            MetricValue::FloatSeries(s) => Value::Object(vec![
                ("kind".to_string(), Value::Str("float-series".to_string())),
                (
                    "value".to_string(),
                    Value::Array(s.iter().map(|v| Value::Num(*v)).collect()),
                ),
            ]),
        };
        fields.push((name.to_string(), body));
    }
    Value::Object(fields)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn sample() -> MetricsRegistry {
        let mut r = MetricsRegistry::new();
        r.add("pushes", 120);
        r.gauge_max("frontier.peak", 17);
        r.record("hops", 3);
        r.record("hops", 40);
        r.series_push("work", 5);
        r.series_push_f("residual", 0.125);
        r
    }

    #[test]
    fn markdown_lists_every_metric_in_name_order() {
        let md = registry_markdown(&sample());
        let frontier = md.find("frontier.peak").unwrap();
        let hops = md.find("hops").unwrap();
        let pushes = md.find("pushes").unwrap();
        assert!(frontier < hops && hops < pushes, "{md}");
        assert!(md.contains("| histogram |"));
    }

    #[test]
    fn csv_has_stable_header_and_rows() {
        let csv = registry_csv(&sample());
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "metric,kind,value,count,sum,mean,p50,p99,p999,max"
        );
        assert!(csv.contains("pushes,counter,120"));
        assert!(csv.contains("work,series,5,0"));
    }

    #[test]
    fn json_export_is_parseable_and_complete() {
        let reg = sample();
        let v = registry_json(&reg);
        let parsed = json::parse(&v.to_json_pretty()).unwrap();
        assert_eq!(parsed, v);
        let hops = parsed.get("hops").unwrap();
        assert_eq!(hops.get("kind").and_then(Value::as_str), Some("histogram"));
        assert_eq!(
            hops.get("summary")
                .and_then(|s| s.get("count"))
                .and_then(Value::as_f64),
            Some(2.0)
        );
    }

    #[test]
    fn every_renderer_carries_p999() {
        // A sparse histogram where p999 differs from both p99 and max:
        // 1000 sevens and two large outliers.
        let mut r = MetricsRegistry::new();
        for _ in 0..1000 {
            r.record("lat", 7);
        }
        r.record("lat", 1_000_000);
        r.record("lat", 1_000_000);
        let md = registry_markdown(&r);
        assert!(md.contains("| p999 |"), "{md}");
        let csv = registry_csv(&r);
        let header = csv.lines().next().unwrap();
        assert!(header.ends_with("p50,p99,p999,max"), "{header}");
        let row = csv.lines().nth(1).unwrap();
        let cols: Vec<&str> = row.split(',').collect();
        assert_eq!(cols[7], "7", "p99 stays in the dense bucket: {row}");
        assert_eq!(cols[8], "1000000", "p999 reaches the outliers: {row}");
        let v = registry_json(&r);
        let summary = v.get("lat").and_then(|m| m.get("summary")).unwrap();
        assert_eq!(
            summary.get("p999").and_then(Value::as_f64),
            Some(1_000_000.0)
        );
        assert_eq!(summary.get("p99").and_then(Value::as_f64), Some(7.0));
    }
}
