//! The metric registry and the write-only [`Sink`] handed to library
//! code.
//!
//! A [`MetricsRegistry`] is a `BTreeMap` from metric name to
//! [`MetricValue`], so iteration (and with it every exporter) is in
//! deterministic name order. Library code never sees the registry: it
//! receives a [`Sink`], which exposes only the *write* half of the API —
//! there is deliberately no way to read a value back through a `Sink`,
//! so an instrumented result path cannot branch on what it recorded.

use std::collections::BTreeMap;

use crate::instruments::Histogram;

/// One recorded metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotone sum of `u64` deltas.
    Counter(u64),
    /// Maximum of the recorded values (a high-watermark gauge).
    Gauge(u64),
    /// Log2 distribution of the recorded values (boxed: the fixed
    /// bucket array dwarfs the other variants).
    Histogram(Box<Histogram>),
    /// Ordered `u64` samples (e.g. per-iteration work); merging adds
    /// elementwise, zero-padding the shorter series.
    Series(Vec<u64>),
    /// Ordered `f64` samples (e.g. per-iteration residual curves).
    /// Merging keeps the elementwise maximum so it stays commutative.
    FloatSeries(Vec<f64>),
}

impl MetricValue {
    /// Short kind tag for exporters.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "histogram",
            MetricValue::Series(_) => "series",
            MetricValue::FloatSeries(_) => "float-series",
        }
    }
}

/// A name-ordered collection of metrics.
///
/// Writes are total: recording into a name that holds a different kind
/// is dropped (and counted in [`MetricsRegistry::kind_conflicts`])
/// rather than panicking, so instrumentation can never abort a result
/// path.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    metrics: BTreeMap<String, MetricValue>,
    kind_conflicts: u64,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `delta` to the counter `name`.
    pub fn add(&mut self, name: &str, delta: u64) {
        match self.metrics.get_mut(name) {
            None => {
                self.metrics
                    .insert(name.to_string(), MetricValue::Counter(delta));
            }
            Some(MetricValue::Counter(c)) => *c = c.saturating_add(delta),
            Some(_) => self.kind_conflicts += 1,
        }
    }

    /// Raises the high-watermark gauge `name` to at least `v`.
    pub fn gauge_max(&mut self, name: &str, v: u64) {
        match self.metrics.get_mut(name) {
            None => {
                self.metrics.insert(name.to_string(), MetricValue::Gauge(v));
            }
            Some(MetricValue::Gauge(g)) => *g = (*g).max(v),
            Some(_) => self.kind_conflicts += 1,
        }
    }

    /// Records `v` into the histogram `name`.
    pub fn record(&mut self, name: &str, v: u64) {
        self.record_n(name, v, 1);
    }

    /// Records `n` identical observations into the histogram `name`.
    pub fn record_n(&mut self, name: &str, v: u64, n: u64) {
        match self.metrics.get_mut(name) {
            None => {
                let mut h = Histogram::new();
                h.record_n(v, n);
                self.metrics
                    .insert(name.to_string(), MetricValue::Histogram(Box::new(h)));
            }
            Some(MetricValue::Histogram(h)) => h.record_n(v, n),
            Some(_) => self.kind_conflicts += 1,
        }
    }

    /// Appends `v` to the `u64` series `name`.
    pub fn series_push(&mut self, name: &str, v: u64) {
        match self.metrics.get_mut(name) {
            None => {
                self.metrics
                    .insert(name.to_string(), MetricValue::Series(vec![v]));
            }
            Some(MetricValue::Series(s)) => s.push(v),
            Some(_) => self.kind_conflicts += 1,
        }
    }

    /// Appends `v` to the `f64` series `name`.
    pub fn series_push_f(&mut self, name: &str, v: f64) {
        match self.metrics.get_mut(name) {
            None => {
                self.metrics
                    .insert(name.to_string(), MetricValue::FloatSeries(vec![v]));
            }
            Some(MetricValue::FloatSeries(s)) => s.push(v),
            Some(_) => self.kind_conflicts += 1,
        }
    }

    /// The metric named `name`, if recorded.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.metrics.get(name)
    }

    /// All metrics in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.metrics.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of recorded metrics.
    #[must_use]
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Writes dropped because a name was reused with a different kind.
    #[must_use]
    pub fn kind_conflicts(&self) -> u64 {
        self.kind_conflicts
    }

    /// Merges `other` into `self`, metric by metric: counters add,
    /// gauges take the max, histograms merge bucketwise, series add
    /// elementwise (zero-padded), float series take the elementwise
    /// max. Same-kind merging is commutative, so per-worker registries
    /// fold to the same result in any order; kind mismatches count as
    /// conflicts and keep `self`'s value.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        self.kind_conflicts += other.kind_conflicts;
        for (name, theirs) in &other.metrics {
            match self.metrics.get_mut(name) {
                None => {
                    self.metrics.insert(name.clone(), theirs.clone());
                }
                Some(mine) => match (mine, theirs) {
                    (MetricValue::Counter(a), MetricValue::Counter(b)) => {
                        *a = a.saturating_add(*b);
                    }
                    (MetricValue::Gauge(a), MetricValue::Gauge(b)) => *a = (*a).max(*b),
                    (MetricValue::Histogram(a), MetricValue::Histogram(b)) => a.merge(b),
                    (MetricValue::Series(a), MetricValue::Series(b)) => {
                        if a.len() < b.len() {
                            a.resize(b.len(), 0);
                        }
                        for (x, y) in a.iter_mut().zip(b.iter()) {
                            *x = x.saturating_add(*y);
                        }
                    }
                    (MetricValue::FloatSeries(a), MetricValue::FloatSeries(b)) => {
                        if a.len() < b.len() {
                            a.resize(b.len(), f64::NEG_INFINITY);
                        }
                        for (x, y) in a.iter_mut().zip(b.iter()) {
                            *x = x.max(*y);
                        }
                    }
                    _ => self.kind_conflicts += 1,
                },
            }
        }
    }
}

/// The write-only half of a [`MetricsRegistry`], for threading through
/// library code.
///
/// A disabled sink turns every call into a no-op, so instrumented code
/// paths need no `if`s — and because the type has no read methods at
/// all, recording can never feed back into a result.
///
/// # Example
///
/// ```
/// use gdsearch_obs::{MetricsRegistry, Sink};
///
/// fn work(sink: &mut Sink<'_>) {
///     sink.add("work.units", 3);
/// }
///
/// let mut silent = Sink::disabled();
/// work(&mut silent); // no-op
///
/// let mut reg = MetricsRegistry::new();
/// work(&mut Sink::attached(&mut reg));
/// assert!(reg.get("work.units").is_some());
/// ```
#[derive(Debug, Default)]
pub struct Sink<'a> {
    target: Option<&'a mut MetricsRegistry>,
}

impl<'a> Sink<'a> {
    /// A sink that drops every write.
    #[must_use]
    pub fn disabled() -> Sink<'static> {
        Sink { target: None }
    }

    /// A sink recording into `registry`.
    pub fn attached(registry: &'a mut MetricsRegistry) -> Sink<'a> {
        Sink {
            target: Some(registry),
        }
    }

    /// Adds `delta` to the counter `name`.
    pub fn add(&mut self, name: &str, delta: u64) {
        if let Some(reg) = self.target.as_mut() {
            reg.add(name, delta);
        }
    }

    /// Raises the high-watermark gauge `name` to at least `v`.
    pub fn gauge_max(&mut self, name: &str, v: u64) {
        if let Some(reg) = self.target.as_mut() {
            reg.gauge_max(name, v);
        }
    }

    /// Records `v` into the histogram `name`.
    pub fn record(&mut self, name: &str, v: u64) {
        if let Some(reg) = self.target.as_mut() {
            reg.record(name, v);
        }
    }

    /// Records `n` identical observations into the histogram `name`.
    pub fn record_n(&mut self, name: &str, v: u64, n: u64) {
        if let Some(reg) = self.target.as_mut() {
            reg.record_n(name, v, n);
        }
    }

    /// Merges a standalone [`Histogram`] into the histogram `name`.
    pub fn merge_histogram(&mut self, name: &str, h: &Histogram) {
        if let Some(reg) = self.target.as_mut() {
            match reg.metrics.get_mut(name) {
                None => {
                    reg.metrics
                        .insert(name.to_string(), MetricValue::Histogram(Box::new(*h)));
                }
                Some(MetricValue::Histogram(mine)) => mine.merge(h),
                Some(_) => reg.kind_conflicts += 1,
            }
        }
    }

    /// Appends `v` to the `u64` series `name`.
    pub fn series_push(&mut self, name: &str, v: u64) {
        if let Some(reg) = self.target.as_mut() {
            reg.series_push(name, v);
        }
    }

    /// Appends `v` to the `f64` series `name`.
    pub fn series_push_f(&mut self, name: &str, v: f64) {
        if let Some(reg) = self.target.as_mut() {
            reg.series_push_f(name, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_land_and_kinds_are_stable() {
        let mut r = MetricsRegistry::new();
        r.add("a", 2);
        r.add("a", 3);
        r.gauge_max("g", 7);
        r.gauge_max("g", 4);
        r.record("h", 10);
        r.series_push("s", 1);
        r.series_push("s", 2);
        r.series_push_f("f", 0.5);
        assert_eq!(r.get("a"), Some(&MetricValue::Counter(5)));
        assert_eq!(r.get("g"), Some(&MetricValue::Gauge(7)));
        assert_eq!(r.get("s"), Some(&MetricValue::Series(vec![1, 2])));
        assert_eq!(r.len(), 5);
        // Kind mismatch: dropped, counted, original intact.
        r.gauge_max("a", 99);
        assert_eq!(r.get("a"), Some(&MetricValue::Counter(5)));
        assert_eq!(r.kind_conflicts(), 1);
    }

    #[test]
    fn merge_combines_by_kind() {
        let mut a = MetricsRegistry::new();
        a.add("c", 1);
        a.gauge_max("g", 5);
        a.record("h", 8);
        a.series_push("s", 1);
        let mut b = MetricsRegistry::new();
        b.add("c", 2);
        b.gauge_max("g", 3);
        b.record("h", 1000);
        b.series_push("s", 10);
        b.series_push("s", 20);
        b.add("only-b", 4);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "same-kind merge is commutative");
        assert_eq!(ab.get("c"), Some(&MetricValue::Counter(3)));
        assert_eq!(ab.get("g"), Some(&MetricValue::Gauge(5)));
        assert_eq!(ab.get("s"), Some(&MetricValue::Series(vec![11, 20])));
        assert_eq!(ab.get("only-b"), Some(&MetricValue::Counter(4)));
        match ab.get("h") {
            Some(MetricValue::Histogram(h)) => assert_eq!(h.count(), 2),
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn disabled_sink_is_a_no_op() {
        let mut sink = Sink::disabled();
        sink.add("x", 1);
        sink.record("y", 2);
        sink.gauge_max("z", 3);
        // Nothing to assert beyond "does not crash": the sink holds no
        // state at all.
    }
}
