//! A minimal JSON document model with a writer and a strict parser.
//!
//! The workspace vendors only API stubs of serde, so the bench-report
//! schema (`BENCH_*.json`) is produced and validated by this hand-rolled
//! module instead. Objects preserve insertion order (they are a
//! `Vec<(key, value)>`), so rendering is deterministic; the parser is a
//! recursive-descent reader of the JSON subset the workspace emits
//! (no `\uXXXX` escapes beyond pass-through, no exponent-less huge
//! integers outside `u64`/`f64`).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer, rendered exactly (no float rounding).
    UInt(u64),
    /// Any other number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The value at `key` when `self` is an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if `self` is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as `f64`, if `self` is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::UInt(u) => Some(*u as f64),
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, if `self` is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The fields, if `self` is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Renders the value as compact JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders the value as indented JSON (two spaces per level).
    #[must_use]
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Value::Num(n) => {
                if n.is_finite() {
                    let _ = write!(out, "{n}");
                } else {
                    // JSON has no NaN/Inf; null is the conventional stand-in.
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Array(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                    if let Some(v) = items.get(i) {
                        v.write(out, indent, depth + 1);
                    }
                });
            }
            Value::Object(fields) => {
                write_seq(out, indent, depth, '{', '}', fields.len(), |out, i| {
                    if let Some((k, v)) = fields.get(i) {
                        write_escaped(out, k);
                        out.push(':');
                        if indent.is_some() {
                            out.push(' ');
                        }
                        v.write(out, indent, depth + 1);
                    }
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a one-line description (with a byte offset) when `text` is
/// not valid JSON or has trailing content.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while bytes
        .get(*pos)
        .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
    {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", char::from(b), *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if bytes.get(*pos..*pos + lit.len()) == Some(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while bytes
        .get(*pos)
        .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(bytes.get(start..*pos).unwrap_or_default())
        .map_err(|_| format!("invalid number at byte {start}"))?;
    if let Ok(u) = text.parse::<u64>() {
        return Ok(Value::UInt(u));
    }
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|_| format!("invalid number `{text}` at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| "invalid \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("invalid \\u escape `{hex}`"))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("invalid escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input is a &str, so
                // boundaries are valid).
                let rest = std::str::from_utf8(bytes.get(*pos..).unwrap_or_default())
                    .map_err(|_| format!("invalid utf-8 at byte {}", *pos))?;
                match rest.chars().next() {
                    Some(c) => {
                        out.push(c);
                        *pos += c.len_utf8();
                    }
                    None => return Err("unterminated string".to_string()),
                }
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(fields));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact_and_pretty() {
        let v = Value::Object(vec![
            ("schema".into(), Value::Str("gdsearch.bench.v1".into())),
            ("count".into(), Value::UInt(18446744073709551615)),
            ("ratio".into(), Value::Num(0.25)),
            ("ok".into(), Value::Bool(true)),
            ("none".into(), Value::Null),
            (
                "rows".into(),
                Value::Array(vec![Value::UInt(1), Value::Str("a\"b\n".into())]),
            ),
        ]);
        for text in [v.to_json(), v.to_json_pretty()] {
            assert_eq!(parse(&text).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn u64_precision_is_exact() {
        let text = Value::UInt(u64::MAX).to_json();
        assert_eq!(text, "18446744073709551615");
        assert_eq!(parse(&text).unwrap(), Value::UInt(u64::MAX));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "\"unterminated",
            "123 456",
            "nul",
            "{\"a\":1,}",
        ] {
            assert!(parse(bad).is_err(), "must reject {bad:?}");
        }
    }

    #[test]
    fn parses_nested_structures_and_escapes() {
        let v = parse("{\"a\": [1, -2.5, {\"b\\u0041\": \"x\\ty\"}]}").unwrap();
        let arr = v.get("a").and_then(Value::as_array).unwrap();
        assert_eq!(arr[0], Value::UInt(1));
        assert_eq!(arr[1], Value::Num(-2.5));
        assert_eq!(arr[2].get("bA").and_then(Value::as_str), Some("x\ty"));
    }
}
