//! The wall-clock half of the observability layer: scoped spans
//! aggregated into a [`SpanTree`].
//!
//! This module is the **only** place in the workspace that reads
//! `std::time::Instant` (the site is allowlisted exactly once in
//! `analysis.toml`, and clippy's `disallowed_methods` is opted out
//! below for the same single call). Wall time is inherently
//! non-deterministic, so nothing here may sit on a result path: only
//! driver and bench code constructs a [`Profiler`], and the analyzer's
//! `obs` rule fails the gate if `Profiler`/`SpanTree` (or this module's
//! path) ever appear in the `graph`/`diffusion`/`dist` crates.

// The wall clock *is* the measurement here; everywhere else in the
// workspace the lint stands.
#![allow(clippy::disallowed_methods)]

use std::time::{Duration, Instant};

use crate::json::Value;

/// Reads the wall clock — the workspace's single `Instant` site.
fn now() -> Instant {
    Instant::now()
}

/// Proof that a span was entered; hand it back to [`Profiler::exit`].
///
/// Tokens are deliberately not `Copy`: each entered span should be
/// exited exactly once (exiting an outer span first force-closes any
/// nested spans still open, so mismatches degrade gracefully instead of
/// corrupting the tree).
#[derive(Debug)]
#[must_use = "exit the span with Profiler::exit or its time is attributed on drop of the profiler"]
pub struct SpanToken {
    frame: usize,
}

/// One aggregated span in a frame arena: spans with the same name under
/// the same parent accumulate into one frame.
#[derive(Debug)]
struct Frame {
    name: String,
    children: Vec<usize>,
    calls: u64,
    total: Duration,
    /// Entry timestamps of currently-open activations (a stack, so
    /// recursive re-entry nests correctly).
    open: Vec<Instant>,
}

/// A scoped wall-clock profiler for driver and bench code.
///
/// # Example
///
/// ```
/// use gdsearch_obs::Profiler;
///
/// let mut prof = Profiler::new();
/// let build = prof.enter("build");
/// let diffusion = prof.enter("diffusion");
/// prof.exit(diffusion);
/// prof.exit(build);
/// let tree = prof.tree();
/// assert_eq!(tree.roots.len(), 1);
/// assert_eq!(tree.roots[0].name, "build");
/// assert_eq!(tree.roots[0].children[0].name, "diffusion");
/// ```
#[derive(Debug, Default)]
pub struct Profiler {
    frames: Vec<Frame>,
    roots: Vec<usize>,
    stack: Vec<usize>,
}

impl Profiler {
    /// An empty profiler.
    #[must_use]
    pub fn new() -> Self {
        Profiler::default()
    }

    /// Opens a span named `name`, nested under the innermost open span.
    pub fn enter(&mut self, name: &str) -> SpanToken {
        let siblings = match self.stack.last() {
            Some(&parent) => self
                .frames
                .get(parent)
                .map(|f| f.children.clone())
                .unwrap_or_default(),
            None => self.roots.clone(),
        };
        let existing = siblings
            .into_iter()
            .find(|&i| self.frames.get(i).is_some_and(|f| f.name == name));
        let idx = match existing {
            Some(i) => i,
            None => {
                let i = self.frames.len();
                self.frames.push(Frame {
                    name: name.to_string(),
                    children: Vec::new(),
                    calls: 0,
                    total: Duration::ZERO,
                    open: Vec::new(),
                });
                match self.stack.last() {
                    Some(&parent) => {
                        if let Some(f) = self.frames.get_mut(parent) {
                            f.children.push(i);
                        }
                    }
                    None => self.roots.push(i),
                }
                i
            }
        };
        if let Some(f) = self.frames.get_mut(idx) {
            f.calls += 1;
            f.open.push(now());
        }
        self.stack.push(idx);
        SpanToken { frame: idx }
    }

    /// Closes the span `token` refers to, force-closing any spans still
    /// open inside it. Tokens whose span was already closed are
    /// ignored.
    pub fn exit(&mut self, token: SpanToken) {
        if !self.stack.contains(&token.frame) {
            return;
        }
        let at = now();
        while let Some(idx) = self.stack.pop() {
            if let Some(f) = self.frames.get_mut(idx) {
                if let Some(t0) = f.open.pop() {
                    f.total += at.saturating_duration_since(t0);
                }
            }
            if idx == token.frame {
                break;
            }
        }
    }

    /// Snapshots the aggregated span tree. Spans still open contribute
    /// only their already-closed activations.
    #[must_use]
    pub fn tree(&self) -> SpanTree {
        SpanTree {
            roots: self.roots.iter().map(|&i| self.node(i)).collect(),
        }
    }

    fn node(&self, idx: usize) -> SpanNode {
        match self.frames.get(idx) {
            Some(f) => SpanNode {
                name: f.name.clone(),
                calls: f.calls,
                total_ns: u64::try_from(f.total.as_nanos()).unwrap_or(u64::MAX),
                children: f.children.iter().map(|&c| self.node(c)).collect(),
            },
            None => SpanNode {
                name: String::new(),
                calls: 0,
                total_ns: 0,
                children: Vec::new(),
            },
        }
    }
}

/// Driver-side wall-clock annotation for a
/// [`TraceLog`](crate::trace::TraceLog).
///
/// The deterministic trace never holds wall time; a `WallStamper` runs
/// *alongside* it in driver code, recording `(event index, nanoseconds
/// since construction)` pairs keyed to the log's event indices. The
/// Chrome exporter ([`chrome_trace_json`](crate::trace::chrome_trace_json))
/// merges the two at render time, so the same log can be exported with
/// or without wall annotation.
///
/// # Example
///
/// ```
/// use gdsearch_obs::clock::WallStamper;
/// use gdsearch_obs::trace::TraceLog;
///
/// let mut log = TraceLog::new();
/// let mut wall = WallStamper::new();
/// let idx = log.begin("scheme.walk");
/// wall.stamp(idx);
/// assert_eq!(wall.stamps().len(), 1);
/// assert_eq!(wall.stamps()[0].0, idx);
/// ```
#[derive(Debug)]
pub struct WallStamper {
    t0: Instant,
    stamps: Vec<(u64, u64)>,
}

impl Default for WallStamper {
    fn default() -> Self {
        WallStamper::new()
    }
}

impl WallStamper {
    /// A stamper whose epoch is the moment of construction.
    #[must_use]
    pub fn new() -> Self {
        WallStamper {
            t0: now(),
            stamps: Vec::new(),
        }
    }

    /// Records the wall time elapsed since construction against trace
    /// event `index`. Call sites stamp events in append order, so the
    /// pairs stay sorted by index for the exporter's binary search.
    pub fn stamp(&mut self, index: u64) {
        let ns =
            u64::try_from(now().saturating_duration_since(self.t0).as_nanos()).unwrap_or(u64::MAX);
        self.stamps.push((index, ns));
    }

    /// The recorded `(event index, nanoseconds)` pairs, in stamp order.
    #[must_use]
    pub fn stamps(&self) -> &[(u64, u64)] {
        &self.stamps
    }
}

/// An aggregated, nested wall-clock profile.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SpanTree {
    /// Top-level spans in first-entry order.
    pub roots: Vec<SpanNode>,
}

/// One aggregated span: total (inclusive) time over all activations,
/// with children nested beneath.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// Span name as passed to [`Profiler::enter`].
    pub name: String,
    /// Number of activations.
    pub calls: u64,
    /// Inclusive wall time over all activations, in nanoseconds.
    pub total_ns: u64,
    /// Nested spans in first-entry order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Exclusive (self) time: inclusive time minus the children's
    /// inclusive time, saturating at zero.
    #[must_use]
    pub fn self_ns(&self) -> u64 {
        let child: u64 = self
            .children
            .iter()
            .fold(0u64, |acc, c| acc.saturating_add(c.total_ns));
        self.total_ns.saturating_sub(child)
    }
}

impl SpanTree {
    /// Whether no spans were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty()
    }

    /// Renders the profile as an indented markdown list with total,
    /// self, and call columns.
    #[must_use]
    pub fn render_markdown(&self) -> String {
        fn walk(node: &SpanNode, depth: usize, out: &mut String) {
            let indent = "  ".repeat(depth);
            out.push_str(&format!(
                "{indent}- `{}` — total {:.3} ms, self {:.3} ms, {} call{}\n",
                node.name,
                node.total_ns as f64 / 1e6,
                node.self_ns() as f64 / 1e6,
                node.calls,
                if node.calls == 1 { "" } else { "s" }
            ));
            for c in &node.children {
                walk(c, depth + 1, out);
            }
        }
        let mut out = String::new();
        for r in &self.roots {
            walk(r, 0, &mut out);
        }
        out
    }

    /// The profile as a JSON value (an array of span objects, children
    /// nested), for embedding in a bench report.
    #[must_use]
    pub fn to_json(&self) -> Value {
        fn node_json(n: &SpanNode) -> Value {
            Value::Object(vec![
                ("name".to_string(), Value::Str(n.name.clone())),
                ("calls".to_string(), Value::UInt(n.calls)),
                ("total_ns".to_string(), Value::UInt(n.total_ns)),
                ("self_ns".to_string(), Value::UInt(n.self_ns())),
                (
                    "children".to_string(),
                    Value::Array(n.children.iter().map(node_json).collect()),
                ),
            ])
        }
        Value::Array(self.roots.iter().map(node_json).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_and_aggregation() {
        let mut p = Profiler::new();
        for _ in 0..3 {
            let outer = p.enter("outer");
            let inner = p.enter("inner");
            p.exit(inner);
            p.exit(outer);
        }
        let other = p.enter("other");
        p.exit(other);
        let t = p.tree();
        assert_eq!(t.roots.len(), 2);
        assert_eq!(t.roots[0].name, "outer");
        assert_eq!(t.roots[0].calls, 3);
        assert_eq!(t.roots[0].children.len(), 1);
        assert_eq!(t.roots[0].children[0].calls, 3);
        assert_eq!(t.roots[1].name, "other");
    }

    #[test]
    fn self_time_never_exceeds_total_and_children_nest_within_parent() {
        let mut p = Profiler::new();
        let a = p.enter("a");
        let b = p.enter("b");
        std::thread::sleep(Duration::from_millis(2));
        p.exit(b);
        p.exit(a);
        let t = p.tree();
        let a = &t.roots[0];
        let b = &a.children[0];
        assert!(a.total_ns >= b.total_ns, "child interval is contained");
        assert_eq!(a.self_ns(), a.total_ns - b.total_ns);
        assert!(b.total_ns >= 2_000_000, "sleep must register");
    }

    #[test]
    fn exiting_an_outer_span_force_closes_inner_spans() {
        let mut p = Profiler::new();
        let outer = p.enter("outer");
        let _leaked = p.enter("leaked");
        p.exit(outer);
        let t = p.tree();
        assert_eq!(t.roots.len(), 1);
        // The leaked inner span was closed by the outer exit: a fresh
        // enter at top level must not nest under it.
        let top = p.enter("top");
        p.exit(top);
        assert_eq!(p.tree().roots.len(), 2);
        assert_eq!(t.roots[0].children[0].name, "leaked");
    }

    #[test]
    fn stale_tokens_are_ignored() {
        let mut p = Profiler::new();
        let outer = p.enter("outer");
        let inner = p.enter("inner");
        p.exit(outer); // force-closes inner too
        p.exit(inner); // stale: must be a no-op
        assert!(p.stack.is_empty());
        let t = p.tree();
        assert_eq!(t.roots[0].children[0].calls, 1);
    }

    #[test]
    fn wall_stamper_is_monotone_and_index_keyed() {
        let mut w = WallStamper::new();
        w.stamp(0);
        std::thread::sleep(Duration::from_millis(1));
        w.stamp(1);
        let s = w.stamps();
        assert_eq!(s.len(), 2);
        assert_eq!((s[0].0, s[1].0), (0, 1));
        assert!(s[1].1 > s[0].1, "stamps advance with the wall clock");
        assert!(s[1].1 >= 1_000_000, "sleep must register");
    }

    #[test]
    fn markdown_and_json_render() {
        let mut p = Profiler::new();
        let a = p.enter("phase");
        p.exit(a);
        let t = p.tree();
        let md = t.render_markdown();
        assert!(md.contains("`phase`"), "{md}");
        match t.to_json() {
            Value::Array(spans) => assert_eq!(spans.len(), 1),
            other => panic!("expected array, got {other:?}"),
        }
    }
}
