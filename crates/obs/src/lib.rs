//! Deterministic observability for the `gdsearch` workspace.
//!
//! The crate is split into two strictly separated halves:
//!
//! 1. **Deterministic instruments** ([`instruments`], [`registry`],
//!    [`trace`]): counters, gauges, and fixed-bucket log2 [`Histogram`]s
//!    recording *work units* — pushes performed, frontier peaks, halo
//!    bytes, frames retransmitted, walk hops — plus the [`TraceLog`]
//!    flight recorder, an append-only event log of per-query phase
//!    boundaries with sequence stamps at drivers and virtual-tick
//!    stamps inside `sim`/`dist`. Pure `u64` math, no clocks: safe
//!    inside result paths and bit-identical across thread counts as
//!    long as recording happens in the deterministic (sequential or
//!    commutatively merged) sections of an algorithm. Library code
//!    receives a write-only [`Sink`], so instrumentation *cannot* read
//!    a metric back and branch a result on it — the analyzer's `obs`
//!    rule additionally proves the readable/clocked types never appear
//!    in the `graph`/`diffusion`/`dist` result paths.
//! 2. **Wall-clock profiling** ([`clock`]): a scoped span API
//!    ([`Profiler::enter`]/[`Profiler::exit`], nested, aggregated into a
//!    [`SpanTree`] with self/child time) and the
//!    [`WallStamper`] that annotates trace events
//!    with wall time without ever entering the log. Only driver and
//!    bench code constructs these; `std::time::Instant` is confined to
//!    `obs::clock` and allowlisted exactly once in `analysis.toml`.
//!
//! [`export`] renders any [`MetricsRegistry`] as markdown, CSV, or JSON;
//! [`trace::chrome_trace_json`] renders a [`TraceLog`] as
//! `chrome://tracing`-loadable trace-event JSON; [`mod@bench`] defines
//! the stable `gdsearch.bench.v1` JSON schema the `ablation_*` binaries
//! emit (`BENCH_*.json`) and the validator CI runs against the
//! artifacts; [`regress`] diffs two such reports with per-metric
//! tolerance bands (the `bench_diff` bin's engine, CI's perf-regression
//! gate).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod clock;
pub mod export;
pub mod instruments;
pub mod json;
pub mod registry;
pub mod regress;
pub mod trace;

pub use clock::{Profiler, SpanNode, SpanToken, SpanTree, WallStamper};
pub use instruments::Histogram;
pub use registry::{MetricValue, MetricsRegistry, Sink};
pub use trace::{TraceEvent, TraceKind, TraceLog};

/// Bundles the observability halves for driver-layer code: an optional
/// deterministic [`Sink`], an optional deterministic [`TraceLog`], an
/// optional wall-clock [`Profiler`], and an optional
/// [`WallStamper`] annotating the trace. The diffusion/graph/dist
/// layers only ever see the [`Sink`] half; `core::scheme` and the bench
/// harness thread an `Observer` end to end so one handle carries all of
/// them.
#[derive(Debug, Default)]
pub struct Observer<'a> {
    sink: Sink<'a>,
    profiler: Option<&'a mut Profiler>,
    trace: Option<&'a mut TraceLog>,
    wall: Option<&'a mut WallStamper>,
}

impl<'a> Observer<'a> {
    /// An observer that records nothing: every instrument call is a
    /// no-op, every span token is `None`.
    #[must_use]
    pub fn disabled() -> Observer<'static> {
        Observer {
            sink: Sink::disabled(),
            profiler: None,
            trace: None,
            wall: None,
        }
    }

    /// An observer recording into `registry` (when `Some`) and timing
    /// spans on `profiler` (when `Some`).
    pub fn new(
        registry: Option<&'a mut MetricsRegistry>,
        profiler: Option<&'a mut Profiler>,
    ) -> Observer<'a> {
        Observer {
            sink: match registry {
                Some(reg) => Sink::attached(reg),
                None => Sink::disabled(),
            },
            profiler,
            trace: None,
            wall: None,
        }
    }

    /// Attaches a flight-recorder log (builder style): subsequent
    /// [`Observer::trace_begin`]/[`Observer::trace_end`]/
    /// [`Observer::trace_tick`] calls append to it.
    #[must_use]
    pub fn with_trace(mut self, trace: &'a mut TraceLog) -> Observer<'a> {
        self.trace = Some(trace);
        self
    }

    /// Attaches a wall-clock annotator (builder style): every trace
    /// event recorded through this observer also gets a wall stamp.
    /// Driver-only, like the profiler.
    #[must_use]
    pub fn with_wall(mut self, wall: &'a mut WallStamper) -> Observer<'a> {
        self.wall = Some(wall);
        self
    }

    /// The deterministic write-only half, for handing to library code.
    pub fn sink(&mut self) -> &mut Sink<'a> {
        &mut self.sink
    }

    /// Opens a wall-clock span when a profiler is attached.
    pub fn enter(&mut self, name: &str) -> Option<SpanToken> {
        self.profiler.as_mut().map(|p| p.enter(name))
    }

    /// Closes a span opened by [`Observer::enter`]; `None` tokens are
    /// ignored so call sites need no branching.
    pub fn exit(&mut self, token: Option<SpanToken>) {
        if let (Some(p), Some(t)) = (self.profiler.as_mut(), token) {
            p.exit(t);
        }
    }

    /// Sets the ambient query id stamped on subsequent trace events
    /// (no-op without an attached log).
    pub fn set_query(&mut self, id: u64) {
        if let Some(t) = self.trace.as_mut() {
            t.set_query(id);
        }
    }

    /// Records a sequence-stamped phase begin in the trace (no-op
    /// without an attached log), wall-annotated when a stamper is
    /// attached.
    pub fn trace_begin(&mut self, phase: &str) {
        if let Some(t) = self.trace.as_mut() {
            let index = t.begin(phase);
            if let Some(w) = self.wall.as_mut() {
                w.stamp(index);
            }
        }
    }

    /// Records a sequence-stamped phase end in the trace (no-op without
    /// an attached log), wall-annotated when a stamper is attached.
    pub fn trace_end(&mut self, phase: &str) {
        if let Some(t) = self.trace.as_mut() {
            let index = t.end(phase);
            if let Some(w) = self.wall.as_mut() {
                w.stamp(index);
            }
        }
    }

    /// Records a tick-stamped marker from the simulated layers (no-op
    /// without an attached log). Tick events are never wall-annotated:
    /// their timebase is the virtual clock.
    pub fn trace_tick(&mut self, phase: &str, shard: Option<u32>, tick: u64) {
        if let Some(t) = self.trace.as_mut() {
            t.tick(phase, shard, tick);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{Stamp, TraceKind};

    #[test]
    fn observer_threads_trace_and_wall() {
        let mut log = TraceLog::new();
        let mut wall = WallStamper::new();
        {
            let mut obs = Observer::new(None, None)
                .with_trace(&mut log)
                .with_wall(&mut wall);
            obs.trace_begin("scheme.diffusion");
            obs.trace_tick("dist.exchange.epoch", Some(1), 12);
            obs.trace_end("scheme.diffusion");
            obs.set_query(5);
            obs.trace_begin("scheme.walk");
            obs.trace_end("scheme.walk");
        }
        assert_eq!(log.len(), 5);
        assert_eq!(log.events()[1].stamp, Stamp::Tick(12));
        assert_eq!(log.events()[3].query_id, 5);
        assert_eq!(log.events()[4].kind, TraceKind::End);
        // Only the four driver events were wall-stamped, in event order.
        let indices: Vec<u64> = wall.stamps().iter().map(|&(i, _)| i).collect();
        assert_eq!(indices, [0, 2, 3, 4]);
    }

    #[test]
    fn disabled_observer_ignores_trace_calls() {
        let mut obs = Observer::disabled();
        obs.set_query(9);
        obs.trace_begin("x");
        obs.trace_tick("y", None, 1);
        obs.trace_end("x");
        // Nothing to assert beyond "does not crash": no log is attached.
    }
}
