//! Deterministic observability for the `gdsearch` workspace.
//!
//! The crate is split into two strictly separated halves:
//!
//! 1. **Deterministic instruments** ([`instruments`], [`registry`]):
//!    counters, gauges, and fixed-bucket log2 [`Histogram`]s recording
//!    *work units* — pushes performed, frontier peaks, halo bytes, frames
//!    retransmitted, walk hops. Pure `u64` math, no clocks, no
//!    allocation beyond the owning registry: safe inside result paths
//!    and bit-identical across thread counts as long as recording
//!    happens in the deterministic (sequential or commutatively merged)
//!    sections of an algorithm. Library code receives a write-only
//!    [`Sink`], so instrumentation *cannot* read a metric back and
//!    branch a result on it — the analyzer's `obs` rule additionally
//!    proves the readable/clocked types never appear in the
//!    `graph`/`diffusion`/`dist` result paths.
//! 2. **Wall-clock profiling** ([`clock`]): a scoped span API
//!    ([`Profiler::enter`]/[`Profiler::exit`], nested, aggregated into a
//!    [`SpanTree`] with self/child time). Only driver and bench code
//!    constructs a [`Profiler`]; `std::time::Instant` is confined to
//!    `obs::clock` and allowlisted exactly once in `analysis.toml`.
//!
//! [`export`] renders any [`MetricsRegistry`] as markdown, CSV, or JSON;
//! [`mod@bench`] defines the stable `gdsearch.bench.v1` JSON schema the
//! `ablation_*` binaries emit (`BENCH_*.json`) and the validator CI runs
//! against the artifacts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod clock;
pub mod export;
pub mod instruments;
pub mod json;
pub mod registry;

pub use clock::{Profiler, SpanNode, SpanToken, SpanTree};
pub use instruments::Histogram;
pub use registry::{MetricValue, MetricsRegistry, Sink};

/// Bundles the two observability halves for driver-layer code: an
/// optional deterministic [`Sink`] and an optional wall-clock
/// [`Profiler`]. The diffusion/graph/dist layers only ever see the
/// [`Sink`] half; `core::scheme` and the bench harness thread an
/// `Observer` end to end so one handle carries both.
#[derive(Debug, Default)]
pub struct Observer<'a> {
    sink: Sink<'a>,
    profiler: Option<&'a mut Profiler>,
}

impl<'a> Observer<'a> {
    /// An observer that records nothing: every instrument call is a
    /// no-op, every span token is `None`.
    #[must_use]
    pub fn disabled() -> Observer<'static> {
        Observer {
            sink: Sink::disabled(),
            profiler: None,
        }
    }

    /// An observer recording into `registry` (when `Some`) and timing
    /// spans on `profiler` (when `Some`).
    pub fn new(
        registry: Option<&'a mut MetricsRegistry>,
        profiler: Option<&'a mut Profiler>,
    ) -> Observer<'a> {
        Observer {
            sink: match registry {
                Some(reg) => Sink::attached(reg),
                None => Sink::disabled(),
            },
            profiler,
        }
    }

    /// The deterministic write-only half, for handing to library code.
    pub fn sink(&mut self) -> &mut Sink<'a> {
        &mut self.sink
    }

    /// Opens a wall-clock span when a profiler is attached.
    pub fn enter(&mut self, name: &str) -> Option<SpanToken> {
        self.profiler.as_mut().map(|p| p.enter(name))
    }

    /// Closes a span opened by [`Observer::enter`]; `None` tokens are
    /// ignored so call sites need no branching.
    pub fn exit(&mut self, token: Option<SpanToken>) {
        if let (Some(p), Some(t)) = (self.profiler.as_mut(), token) {
            p.exit(t);
        }
    }
}
