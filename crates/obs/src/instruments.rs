//! The deterministic instruments: fixed-bucket log2 histograms (and the
//! counter/gauge semantics the [`crate::registry`] builds on them).
//!
//! Everything here is plain `u64` arithmetic over fixed-size state, so
//! recording is allocation-free, branch-predictable, and — when driven
//! from the deterministic sections of an algorithm — bit-identical
//! across thread counts, shard counts, and transports.

/// Number of buckets in a [`Histogram`]: one per possible bit length of
/// a `u64` observation, plus a dedicated zero bucket.
pub const NUM_BUCKETS: usize = 64;

/// A fixed-bucket log2 histogram of `u64` observations.
///
/// Bucket `0` holds the observation `0`; bucket `i ≥ 1` holds the
/// observations of bit length `i`, i.e. `2^(i-1) ≤ v < 2^i` — except the
/// last bucket, which also absorbs everything of bit length 64. The
/// bucket layout is fixed at compile time, so two histograms always
/// merge bucket-by-bucket and [`Histogram::merge`] is commutative and
/// associative (it is elementwise `u64` addition).
///
/// # Example
///
/// ```
/// use gdsearch_obs::Histogram;
///
/// let mut h = Histogram::new();
/// for v in [0, 1, 2, 3, 900] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.sum(), 906);
/// assert_eq!(h.max(), 900);
/// assert!(h.quantile(0.5) >= 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    max: u64,
    buckets: [u64; NUM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            max: 0,
            buckets: [0; NUM_BUCKETS],
        }
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram::default()
    }

    /// The bucket index observation `v` falls into: its bit length,
    /// clamped to the last bucket (the zero bucket for `v == 0`).
    #[must_use]
    pub fn bucket_index(v: u64) -> usize {
        let bits = u64::BITS - v.leading_zeros();
        usize::try_from(bits)
            .unwrap_or(NUM_BUCKETS - 1)
            .min(NUM_BUCKETS - 1)
    }

    /// The inclusive upper bound of bucket `i` (saturating to
    /// `u64::MAX` for the last bucket). Out-of-range indices also
    /// report `u64::MAX`.
    #[must_use]
    pub fn bucket_upper_bound(i: usize) -> u64 {
        if i >= NUM_BUCKETS - 1 {
            return u64::MAX;
        }
        let shift = u32::try_from(i).unwrap_or(0);
        (1u64 << shift) - 1
    }

    /// The inclusive lower bound of bucket `i` (0 for the zero bucket).
    #[must_use]
    pub fn bucket_lower_bound(i: usize) -> u64 {
        if i == 0 {
            return 0;
        }
        let shift = u32::try_from(i.min(NUM_BUCKETS) - 1).unwrap_or(0);
        1u64 << shift
    }

    /// Records one observation.
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` identical observations at once.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.count = self.count.saturating_add(n);
        self.sum = self.sum.saturating_add(v.saturating_mul(n));
        self.max = self.max.max(v);
        if let Some(b) = self.buckets.get_mut(Self::bucket_index(v)) {
            *b = b.saturating_add(n);
        }
    }

    /// Total number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of all observations.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest observation (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Whether the histogram has no observations.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean observation (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// An upper bound on the `q`-quantile (`q` clamped to `[0, 1]`):
    /// the inclusive upper bound of the first bucket at which the
    /// cumulative count reaches `ceil(q · count)`, tightened by the
    /// recorded maximum. Returns 0 when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(*b);
            if seen >= target {
                return Self::bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Merges `other` into `self`: elementwise `u64` addition over the
    /// fixed buckets (plus saturating count/sum addition and a max of
    /// maxima) — commutative and associative, so per-worker histograms
    /// can be folded in any deterministic order.
    pub fn merge(&mut self, other: &Histogram) {
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a = a.saturating_add(*b);
        }
    }

    /// The non-empty buckets as `(lower, upper, count)` triples, for
    /// exporters.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, c)| (Self::bucket_lower_bound(i), Self::bucket_upper_bound(i), *c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_bit_lengths() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(1023), 10);
        assert_eq!(Histogram::bucket_index(1024), 11);
        assert_eq!(Histogram::bucket_index(u64::MAX), NUM_BUCKETS - 1);
        // Every bucket's bounds bracket exactly its members.
        for i in 1..NUM_BUCKETS - 1 {
            let lo = Histogram::bucket_lower_bound(i);
            let hi = Histogram::bucket_upper_bound(i);
            assert_eq!(Histogram::bucket_index(lo), i);
            assert_eq!(Histogram::bucket_index(hi), i);
            assert!(lo <= hi);
            assert_eq!(Histogram::bucket_upper_bound(i - 1) + 1, lo);
        }
        assert_eq!(Histogram::bucket_upper_bound(0), 0);
        assert_eq!(Histogram::bucket_upper_bound(NUM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn quantiles_bound_the_distribution() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        // p50 upper bound must cover at least half the mass but stay a
        // power-of-two bound.
        let p50 = h.quantile(0.5);
        assert!((500..=1023).contains(&p50), "p50 = {p50}");
        let p99 = h.quantile(0.99);
        assert!((990..=1023).contains(&p99), "p99 = {p99}");
        assert_eq!(h.quantile(1.0), 1000, "tightened by the recorded max");
        assert_eq!(Histogram::new().quantile(0.99), 0);
    }

    #[test]
    fn extreme_quantiles_on_sparse_histograms_hit_bucket_boundaries() {
        // One sample: every quantile collapses to it.
        let mut h = Histogram::new();
        h.record(100);
        for q in [0.0, 0.5, 0.99, 0.999, 1.0] {
            assert_eq!(h.quantile(q), 100, "single sample at q={q}");
        }
        // Two widely separated samples: p50 stays in the low bucket,
        // every tail quantile jumps to the (max-tightened) high bucket.
        let mut h = Histogram::new();
        h.record(1);
        h.record(1 << 40);
        assert_eq!(h.quantile(0.5), 1);
        assert_eq!(h.quantile(0.99), 1 << 40);
        assert_eq!(h.quantile(0.999), 1 << 40);
        // 999 low + 1 high: p999 must still reach the outlier (target
        // rank ceil(0.999 * 1000) = 999 lands in the low bucket, so the
        // p999 bound is the low bucket's upper bound; p1000 == max).
        let mut h = Histogram::new();
        h.record_n(7, 999);
        h.record(1 << 20);
        assert_eq!(h.quantile(0.5), 7);
        assert_eq!(h.quantile(0.999), 7, "rank 999 of 1000 is still a 7");
        assert_eq!(h.quantile(1.0), 1 << 20);
        // 1000 low + 2 high: rank ceil(0.999 * 1002) = 1001 crosses into
        // the outlier bucket, tightened by the max.
        let mut h = Histogram::new();
        h.record_n(7, 1000);
        h.record_n(1_000_000, 2);
        assert_eq!(h.quantile(0.999), 1_000_000);
        assert_eq!(h.quantile(0.99), 7);
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for _ in 0..7 {
            a.record(42);
        }
        b.record_n(42, 7);
        assert_eq!(a, b);
        b.record_n(9, 0);
        assert_eq!(a, b, "zero-count records are no-ops");
    }

    #[test]
    fn merge_is_commutative_and_preserves_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [1u64, 5, 5, 900] {
            a.record(v);
        }
        for v in [0u64, 2, 1 << 40] {
            b.record(v);
        }
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count(), a.count() + b.count());
        assert_eq!(ab.sum(), a.sum() + b.sum());
    }
}
