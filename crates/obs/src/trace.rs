//! The query-path flight recorder: a deterministic, append-only event
//! log.
//!
//! A [`TraceLog`] records *where a query spends its time* as it moves
//! through the serving pipeline — personalization, diffusion, walk,
//! distributed exchange epochs — as plain-data [`TraceEvent`]s. Like the
//! instruments half of this crate, the log is strictly deterministic:
//! events carry either a **sequence stamp** (a driver-side monotone
//! counter) or a **tick stamp** (the simulator's virtual clock), never
//! wall time, so a trace recorded at the same sequential driver points
//! is bit-identical across thread counts, shard counts, and transports.
//!
//! Wall-clock annotation is a separate, driver-only concern: a
//! [`WallStamper`](crate::clock::WallStamper) records `(event index,
//! nanoseconds)` pairs *alongside* the log without ever touching it, and
//! [`chrome_trace_json`] merges the two at export time. The analyzer's
//! `obs` rule keeps [`TraceLog`] (a readable type) out of result paths,
//! exactly as it does for [`MetricsRegistry`](crate::MetricsRegistry).
//!
//! [`chrome_trace_json`] renders a log as Chrome trace-event JSON — load
//! the file in `chrome://tracing` (or <https://ui.perfetto.dev>) to see
//! per-query flame lanes.

use crate::json::Value;

/// What a trace event marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A phase opened.
    Begin,
    /// A phase closed.
    End,
    /// An instantaneous marker.
    Point,
}

/// When a trace event happened, in one of the two deterministic
/// timebases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stamp {
    /// Driver-side sequence number (monotone per [`TraceLog`]).
    Seq(u64),
    /// Virtual simulator tick (`sim`/`dist` timebase).
    Tick(u64),
}

/// One flight-recorder event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// The query this event belongs to (0 is reserved for build/setup
    /// work that is not attributable to a single query).
    pub query_id: u64,
    /// Phase name (`scheme.diffusion`, `dist.exchange.epoch`, ...).
    pub phase: String,
    /// Shard the event happened on, when attributable to one.
    pub shard: Option<u32>,
    /// Deterministic timestamp.
    pub stamp: Stamp,
    /// Begin / end / point.
    pub kind: TraceKind,
}

/// An append-only, deterministic event log.
///
/// Drivers set the ambient query id with [`TraceLog::set_query`] and
/// record phase boundaries with [`TraceLog::begin`] / [`TraceLog::end`];
/// tick-stamped events from the simulated layers land via
/// [`TraceLog::tick`]. Every recording method returns the index of the
/// appended event so a wall-clock annotator can key its stamps to it.
///
/// # Example
///
/// ```
/// use gdsearch_obs::trace::{TraceKind, TraceLog};
///
/// let mut log = TraceLog::new();
/// log.set_query(7);
/// log.begin("scheme.walk");
/// log.end("scheme.walk");
/// assert_eq!(log.len(), 2);
/// assert_eq!(log.events()[0].query_id, 7);
/// assert_eq!(log.events()[1].kind, TraceKind::End);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceLog {
    events: Vec<TraceEvent>,
    next_seq: u64,
    query_id: u64,
}

impl TraceLog {
    /// An empty log with the ambient query id 0 (build/setup).
    #[must_use]
    pub fn new() -> Self {
        TraceLog::default()
    }

    /// Sets the ambient query id stamped on subsequent events.
    pub fn set_query(&mut self, id: u64) {
        self.query_id = id;
    }

    /// The current ambient query id.
    #[must_use]
    pub fn query(&self) -> u64 {
        self.query_id
    }

    fn push(&mut self, phase: &str, shard: Option<u32>, stamp: Stamp, kind: TraceKind) -> u64 {
        let index = self.events.len() as u64;
        self.events.push(TraceEvent {
            query_id: self.query_id,
            phase: phase.to_string(),
            shard,
            stamp,
            kind,
        });
        index
    }

    fn seq(&mut self) -> Stamp {
        let s = Stamp::Seq(self.next_seq);
        self.next_seq += 1;
        s
    }

    /// Records a sequence-stamped phase begin; returns the event index.
    pub fn begin(&mut self, phase: &str) -> u64 {
        let stamp = self.seq();
        self.push(phase, None, stamp, TraceKind::Begin)
    }

    /// Records a sequence-stamped phase end; returns the event index.
    pub fn end(&mut self, phase: &str) -> u64 {
        let stamp = self.seq();
        self.push(phase, None, stamp, TraceKind::End)
    }

    /// Records a sequence-stamped instantaneous marker; returns the
    /// event index.
    pub fn point(&mut self, phase: &str) -> u64 {
        let stamp = self.seq();
        self.push(phase, None, stamp, TraceKind::Point)
    }

    /// Records a tick-stamped marker from the simulated layers (`sim`
    /// reactor ticks, `dist` exchange epochs); returns the event index.
    pub fn tick(&mut self, phase: &str, shard: Option<u32>, tick: u64) -> u64 {
        self.push(phase, shard, Stamp::Tick(tick), TraceKind::Point)
    }

    /// All recorded events, in append order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events in `phase`.
    #[must_use]
    pub fn count_phase(&self, phase: &str) -> usize {
        self.events.iter().filter(|e| e.phase == phase).count()
    }
}

/// Renders a [`TraceLog`] as Chrome trace-event JSON, loadable in
/// `chrome://tracing`.
///
/// Every event becomes one entry of the `traceEvents` array: `ph` is
/// `B`/`E`/`i` for begin/end/point, `tid` is the query id (one lane per
/// query), `pid` is the shard (0 for unsharded driver phases), and `cat`
/// names the timebase (`seq` or `tick`).
///
/// `wall` optionally annotates events with driver-side wall time: a
/// slice of `(event index, nanoseconds since trace start)` pairs as
/// recorded by a [`WallStamper`](crate::clock::WallStamper). Annotated
/// events get real microsecond timestamps; unannotated events fall back
/// to their deterministic stamp value, so a purely deterministic log
/// still renders with correct ordering.
#[must_use]
pub fn chrome_trace_json(log: &TraceLog, wall: Option<&[(u64, u64)]>) -> String {
    let wall_ts = |index: u64| -> Option<f64> {
        let stamps = wall?;
        let at = stamps.binary_search_by_key(&index, |&(i, _)| i).ok()?;
        stamps.get(at).map(|&(_, ns)| ns as f64 / 1_000.0)
    };
    let mut entries = Vec::with_capacity(log.len());
    for (index, event) in log.events().iter().enumerate() {
        let (ph, cat) = match (event.kind, event.stamp) {
            (TraceKind::Begin, _) => ("B", "seq"),
            (TraceKind::End, _) => ("E", "seq"),
            (TraceKind::Point, Stamp::Tick(_)) => ("i", "tick"),
            (TraceKind::Point, Stamp::Seq(_)) => ("i", "seq"),
        };
        let ts = match wall_ts(index as u64) {
            Some(us) => Value::Num(us),
            None => match event.stamp {
                Stamp::Seq(s) => Value::UInt(s),
                Stamp::Tick(t) => Value::UInt(t),
            },
        };
        let mut fields = vec![
            ("name".to_string(), Value::Str(event.phase.clone())),
            ("cat".to_string(), Value::Str(cat.to_string())),
            ("ph".to_string(), Value::Str(ph.to_string())),
            ("ts".to_string(), ts),
            (
                "pid".to_string(),
                Value::UInt(u64::from(event.shard.unwrap_or(0))),
            ),
            ("tid".to_string(), Value::UInt(event.query_id)),
        ];
        if ph == "i" {
            // Instant-event scope: thread-local, the narrowest marker.
            fields.push(("s".to_string(), Value::Str("t".to_string())));
        }
        entries.push(Value::Object(fields));
    }
    Value::Object(vec![("traceEvents".to_string(), Value::Array(entries))]).to_json_pretty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn sample() -> TraceLog {
        let mut log = TraceLog::new();
        log.begin("scheme.personalization");
        log.end("scheme.personalization");
        log.begin("scheme.diffusion");
        log.tick("dist.exchange.epoch", Some(2), 480);
        log.end("scheme.diffusion");
        log.set_query(3);
        log.begin("scheme.walk");
        log.end("scheme.walk");
        log
    }

    #[test]
    fn sequence_stamps_are_monotone_and_query_scoped() {
        let log = sample();
        let mut last = None;
        for e in log.events() {
            if let Stamp::Seq(s) = e.stamp {
                if let Some(prev) = last {
                    assert!(s > prev, "seq stamps must be strictly increasing");
                }
                last = Some(s);
            }
        }
        assert_eq!(log.events()[0].query_id, 0, "build work is query 0");
        assert_eq!(log.events()[6].query_id, 3);
        assert_eq!(log.count_phase("scheme.diffusion"), 2);
        assert_eq!(log.count_phase("dist.exchange.epoch"), 1);
    }

    #[test]
    fn tick_events_keep_shard_and_tick() {
        let log = sample();
        let tick = &log.events()[3];
        assert_eq!(tick.shard, Some(2));
        assert_eq!(tick.stamp, Stamp::Tick(480));
        assert_eq!(tick.kind, TraceKind::Point);
    }

    #[test]
    fn identical_recordings_are_bit_identical() {
        assert_eq!(sample(), sample());
        assert_eq!(
            chrome_trace_json(&sample(), None),
            chrome_trace_json(&sample(), None),
            "the exporter must be deterministic too"
        );
    }

    #[test]
    fn chrome_export_is_parseable_and_shaped() {
        let text = chrome_trace_json(&sample(), None);
        let doc = json::parse(&text).expect("exporter emits valid JSON");
        let events = doc
            .get("traceEvents")
            .and_then(Value::as_array)
            .expect("traceEvents array");
        assert_eq!(events.len(), 7);
        let first = &events[0];
        assert_eq!(first.get("ph").and_then(Value::as_str), Some("B"));
        assert_eq!(
            first.get("name").and_then(Value::as_str),
            Some("scheme.personalization")
        );
        // The tick event lands in the shard-2 process lane.
        let tick = &events[3];
        assert_eq!(tick.get("ph").and_then(Value::as_str), Some("i"));
        assert_eq!(tick.get("cat").and_then(Value::as_str), Some("tick"));
        assert_eq!(tick.get("pid").and_then(Value::as_f64), Some(2.0));
        assert_eq!(tick.get("ts").and_then(Value::as_f64), Some(480.0));
        // Walk events carry the query id as the thread lane.
        let walk = &events[5];
        assert_eq!(walk.get("tid").and_then(Value::as_f64), Some(3.0));
    }

    #[test]
    fn wall_annotation_overrides_deterministic_stamps() {
        let log = sample();
        // Annotate events 0 and 1 with wall time; the rest keep stamps.
        let wall = vec![(0u64, 1_500u64), (1u64, 4_000u64)];
        let text = chrome_trace_json(&log, Some(&wall));
        let doc = json::parse(&text).expect("valid JSON");
        let events = doc.get("traceEvents").and_then(Value::as_array).unwrap();
        assert_eq!(events[0].get("ts").and_then(Value::as_f64), Some(1.5));
        assert_eq!(events[1].get("ts").and_then(Value::as_f64), Some(4.0));
        // Unannotated events fall back to their seq stamp.
        assert_eq!(events[2].get("ts").and_then(Value::as_f64), Some(2.0));
    }
}
