//! The repo commits `BENCH_engines.json`, `BENCH_distributed.json`, and
//! `BENCH_serving.json` trajectory artifacts at its root; these tests
//! keep the checked-in files honest against the `gdsearch.bench.v1`
//! schema so downstream tooling (and the `bench_diff` regression gate)
//! can always parse them. CI regenerates the artifacts and points
//! `GDSEARCH_BENCH_JSON` / `GDSEARCH_BENCH_DISTRIBUTED_JSON` /
//! `GDSEARCH_BENCH_SERVING_JSON` at the fresh copies to validate those
//! instead.

use gdsearch_obs::bench::{validate, SCHEMA};

#[test]
fn committed_bench_engines_json_is_schema_valid() {
    // Test-harness knob, not a result path: CI redirects the check at a
    // freshly generated artifact instead of the committed one.
    #[allow(clippy::disallowed_methods)]
    let path = std::env::var("GDSEARCH_BENCH_JSON")
        .unwrap_or_else(|_| format!("{}/../../BENCH_engines.json", env!("CARGO_MANIFEST_DIR")));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    validate(&text).unwrap_or_else(|e| panic!("{path} violates {SCHEMA}: {e}"));
    assert!(
        text.contains("\"bin\": \"ablation_engines\""),
        "{path} was not produced by ablation_engines"
    );
    assert!(
        text.contains("\"wall_ms\""),
        "{path} carries no wall-clock measurements"
    );
}

#[test]
fn committed_bench_distributed_json_is_schema_valid() {
    // Same test-harness knob as above, for the distributed trajectory.
    #[allow(clippy::disallowed_methods)]
    let path = std::env::var("GDSEARCH_BENCH_DISTRIBUTED_JSON").unwrap_or_else(|_| {
        format!(
            "{}/../../BENCH_distributed.json",
            env!("CARGO_MANIFEST_DIR")
        )
    });
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    validate(&text).unwrap_or_else(|e| panic!("{path} violates {SCHEMA}: {e}"));
    assert!(
        text.contains("\"bin\": \"ablation_distributed\""),
        "{path} was not produced by ablation_distributed"
    );
}

#[test]
fn committed_bench_serving_json_is_schema_valid() {
    // Same test-harness knob as above, for the serving-engine trajectory.
    #[allow(clippy::disallowed_methods)]
    let path = std::env::var("GDSEARCH_BENCH_SERVING_JSON")
        .unwrap_or_else(|_| format!("{}/../../BENCH_serving.json", env!("CARGO_MANIFEST_DIR")));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    validate(&text).unwrap_or_else(|e| panic!("{path} violates {SCHEMA}: {e}"));
    assert!(
        text.contains("\"bin\": \"ablation_serving\""),
        "{path} was not produced by ablation_serving"
    );
    assert!(
        text.contains("\"cache_hit_rate\""),
        "{path} carries no cache hit-rate measurements"
    );
}
