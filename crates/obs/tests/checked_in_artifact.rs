//! The repo commits a `BENCH_engines.json` trajectory artifact at its
//! root; this test keeps the checked-in file honest against the
//! `gdsearch.bench.v1` schema so downstream tooling can always parse it.
//! CI regenerates the artifact and points `GDSEARCH_BENCH_JSON` at the
//! fresh copy to validate that one instead.

use gdsearch_obs::bench::{validate, SCHEMA};

#[test]
fn committed_bench_engines_json_is_schema_valid() {
    // Test-harness knob, not a result path: CI redirects the check at a
    // freshly generated artifact instead of the committed one.
    #[allow(clippy::disallowed_methods)]
    let path = std::env::var("GDSEARCH_BENCH_JSON")
        .unwrap_or_else(|_| format!("{}/../../BENCH_engines.json", env!("CARGO_MANIFEST_DIR")));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    validate(&text).unwrap_or_else(|e| panic!("{path} violates {SCHEMA}: {e}"));
    assert!(
        text.contains("\"bin\": \"ablation_engines\""),
        "{path} was not produced by ablation_engines"
    );
    assert!(
        text.contains("\"wall_ms\""),
        "{path} carries no wall-clock measurements"
    );
}
