//! Algebraic laws of metric merging. Per-worker registries are folded in
//! whatever order the scheduler finishes them, so the fold must not care:
//! same-kind merge has to be commutative and associative, and histogram
//! merging has to preserve totals exactly.

use gdsearch_obs::{Histogram, MetricsRegistry};
use proptest::prelude::*;

/// One registry write. Each kind gets its own name pool so merges never
/// hit a kind conflict — conflict accounting is deliberately *not*
/// associative (it keeps the first-seen kind), and the sequential
/// recording discipline guarantees engines never mix kinds on a name.
#[derive(Debug, Clone)]
enum Op {
    Add(u8, u64),
    Gauge(u8, u64),
    Record(u8, u64),
    Series(u8, u64),
    SeriesF(u8, u32),
}

fn apply(reg: &mut MetricsRegistry, ops: &[Op]) {
    for op in ops {
        match *op {
            Op::Add(i, v) => reg.add(&format!("counter.{i}"), v),
            Op::Gauge(i, v) => reg.gauge_max(&format!("gauge.{i}"), v),
            Op::Record(i, v) => reg.record(&format!("hist.{i}"), v),
            Op::Series(i, v) => reg.series_push(&format!("series.{i}"), v),
            Op::SeriesF(i, v) => reg.series_push_f(&format!("fseries.{i}"), f64::from(v)),
        }
    }
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0u8..5, 0u8..3, 0u64..1 << 40).prop_map(|(kind, i, v)| match kind {
        0 => Op::Add(i, v),
        1 => Op::Gauge(i, v),
        2 => Op::Record(i, v),
        3 => Op::Series(i, v),
        _ => Op::SeriesF(i, (v & 0xffff_ffff) as u32),
    })
}

fn registry(ops: &[Op]) -> MetricsRegistry {
    let mut reg = MetricsRegistry::new();
    apply(&mut reg, ops);
    reg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn registry_merge_is_commutative(
        a in collection::vec(op_strategy(), 0..24),
        b in collection::vec(op_strategy(), 0..24),
    ) {
        let (ra, rb) = (registry(&a), registry(&b));
        let mut ab = ra.clone();
        ab.merge(&rb);
        let mut ba = rb;
        ba.merge(&ra);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn registry_merge_is_associative(
        a in collection::vec(op_strategy(), 0..24),
        b in collection::vec(op_strategy(), 0..24),
        c in collection::vec(op_strategy(), 0..24),
    ) {
        let (ra, rb, rc) = (registry(&a), registry(&b), registry(&c));
        // (a ⊕ b) ⊕ c
        let mut left = ra.clone();
        left.merge(&rb);
        left.merge(&rc);
        // a ⊕ (b ⊕ c)
        let mut bc = rb;
        bc.merge(&rc);
        let mut right = ra;
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn histogram_merge_is_associative_and_preserves_totals(
        a in collection::vec((0u64..1 << 48, 1u64..100), 0..32),
        b in collection::vec((0u64..1 << 48, 1u64..100), 0..32),
        c in collection::vec((0u64..1 << 48, 1u64..100), 0..32),
    ) {
        let build = |obs: &[(u64, u64)]| {
            let mut h = Histogram::new();
            for &(v, n) in obs {
                h.record_n(v, n);
            }
            h
        };
        let (ha, hb, hc) = (build(&a), build(&b), build(&c));
        let mut left = ha;
        left.merge(&hb);
        left.merge(&hc);
        let mut bc = hb;
        bc.merge(&hc);
        let mut right = ha;
        right.merge(&bc);
        prop_assert_eq!(&left, &right);
        prop_assert_eq!(
            left.count(),
            ha.count() + hb.count() + hc.count()
        );
        prop_assert_eq!(left.max(), ha.max().max(hb.max()).max(hc.max()));
    }
}
