//! Instrumented engines must report the same numbers no matter how many
//! workpool threads the schedule lands on: every `Sink` write happens in
//! a sequential driver section, so registries are bit-identical across
//! thread counts — and so are the diffusion results themselves.

use gdsearch_diffusion::push::PushConfig;
use gdsearch_diffusion::sharded::{self, ShardedConfig};
use gdsearch_diffusion::{power, push, PprConfig, Signal};
use gdsearch_embed::Embedding;
use gdsearch_graph::{generators, NodeId};
use gdsearch_obs::{MetricsRegistry, Sink};
use proptest::prelude::*;

const THREADS: [usize; 3] = [1, 2, 4];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn power_registry_is_thread_invariant(
        n in 16u32..64,
        alpha in 0.2f32..0.8,
        source in 0usize..16,
    ) {
        let graph = generators::ring(n).expect("ring builds");
        let config = PprConfig::new(alpha).expect("valid alpha");
        let mut e0 = Signal::zeros(n as usize, 2);
        e0.row_mut(source % n as usize)[0] = 1.0;
        e0.row_mut(source % n as usize)[1] = 0.5;

        let mut runs = THREADS.iter().map(|&threads| {
            let mut reg = MetricsRegistry::new();
            let out = power::diffuse_threaded_observed(
                &graph, &e0, &config, threads, &mut Sink::attached(&mut reg),
            )
            .expect("diffusion converges");
            (reg, out)
        });
        let (first_reg, first_out) = runs.next().expect("three thread counts");
        for (reg, out) in runs {
            prop_assert_eq!(&reg, &first_reg);
            prop_assert_eq!(out.signal.as_slice(), first_out.signal.as_slice());
        }
        prop_assert!(!first_reg.is_empty());
        prop_assert_eq!(first_reg.kind_conflicts(), 0);
    }

    #[test]
    fn push_registry_is_thread_invariant(
        n in 16u32..64,
        alpha in 0.2f32..0.8,
        sources in collection::vec(0u32..16, 1..4),
    ) {
        let graph = generators::ring(n).expect("ring builds");
        let ppr = PprConfig::new(alpha).expect("valid alpha");
        let sources: Vec<(NodeId, Embedding)> = sources
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                (NodeId::new(s % n), Embedding::new(vec![1.0, 0.25 * i as f32]))
            })
            .collect();

        let mut runs = THREADS.iter().map(|&threads| {
            let config = PushConfig::new(ppr)
                .with_threads(threads)
                .expect("valid threads");
            let mut reg = MetricsRegistry::new();
            let out = push::diffuse_sparse_observed(
                &graph, 2, &sources, &config, &mut Sink::attached(&mut reg),
            )
            .expect("push converges");
            (reg, out)
        });
        let (first_reg, first_out) = runs.next().expect("three thread counts");
        for (reg, out) in runs {
            prop_assert_eq!(&reg, &first_reg);
            prop_assert_eq!(out.as_slice(), first_out.as_slice());
        }
        prop_assert!(!first_reg.is_empty());
        prop_assert_eq!(first_reg.kind_conflicts(), 0);
    }

    #[test]
    fn sharded_registry_is_thread_invariant(
        n in 24u32..64,
        shards in 1usize..4,
        alpha in 0.2f32..0.8,
    ) {
        let graph = generators::ring(n).expect("ring builds");
        let ppr = PprConfig::new(alpha).expect("valid alpha");
        let mut e0 = Signal::zeros(n as usize, 2);
        e0.row_mut(1)[0] = 1.0;
        e0.row_mut(n as usize / 2)[1] = 1.0;

        let mut runs = THREADS.iter().map(|&threads| {
            let config = ShardedConfig::new(ppr)
                .with_shards(shards)
                .expect("valid shards")
                .with_threads(threads)
                .expect("valid threads");
            let mut reg = MetricsRegistry::new();
            let out = sharded::diffuse_observed(
                &graph, &e0, &config, &mut Sink::attached(&mut reg),
            )
            .expect("sharded diffusion converges");
            (reg, out)
        });
        let (first_reg, first_out) = runs.next().expect("three thread counts");
        for (reg, out) in runs {
            prop_assert_eq!(&reg, &first_reg);
            prop_assert_eq!(out.signal.as_slice(), first_out.signal.as_slice());
        }
        prop_assert!(!first_reg.is_empty());
        prop_assert_eq!(first_reg.kind_conflicts(), 0);
    }
}
