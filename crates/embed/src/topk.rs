//! Bounded top-k selection by score.
//!
//! Query messages in the search scheme "keep track of the k most relevant
//! documents they have encountered along with their relevance score"
//! (paper §IV-C). [`TopK`] is that tracker: a bounded collector that keeps
//! the `k` highest-scoring items seen so far.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An item with its relevance score, as returned by [`TopK::into_sorted`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scored<T> {
    /// Relevance score; higher is better.
    pub score: f32,
    /// The item.
    pub item: T,
}

/// Internal wrapper giving `Scored` a *min*-heap ordering on score so the
/// heap root is the weakest retained item.
#[derive(Debug, Clone)]
struct MinByScore<T>(Scored<T>);

impl<T> PartialEq for MinByScore<T> {
    fn eq(&self, other: &Self) -> bool {
        self.0.score == other.0.score
    }
}

impl<T> Eq for MinByScore<T> {}

impl<T> PartialOrd for MinByScore<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for MinByScore<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the smallest on top.
        other.0.score.total_cmp(&self.0.score)
    }
}

/// Bounded collector of the `k` highest-scoring items.
///
/// Non-finite scores (NaN, ±∞) are rejected by [`TopK::push`] and simply not
/// inserted, so the collector's contents always sort cleanly.
///
/// # Example
///
/// ```
/// use gdsearch_embed::topk::TopK;
///
/// let mut top = TopK::new(2);
/// top.push(0.3, "c");
/// top.push(0.9, "a");
/// top.push(0.5, "b");
/// let best: Vec<_> = top.into_sorted().into_iter().map(|s| s.item).collect();
/// assert_eq!(best, vec!["a", "b"]);
/// ```
#[derive(Debug, Clone)]
pub struct TopK<T> {
    k: usize,
    heap: BinaryHeap<MinByScore<T>>,
}

impl<T> TopK<T> {
    /// Creates a collector that retains the `k` best items. `k = 0` retains
    /// nothing.
    pub fn new(k: usize) -> Self {
        TopK {
            k,
            heap: BinaryHeap::with_capacity(k.saturating_add(1)),
        }
    }

    /// Capacity `k` the collector was created with.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of items currently retained.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no items are retained.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Offers an item. Returns `true` if it was retained (it may later be
    /// evicted by better items). Non-finite scores are ignored.
    pub fn push(&mut self, score: f32, item: T) -> bool {
        if self.k == 0 || !score.is_finite() {
            return false;
        }
        if self.heap.len() < self.k {
            self.heap.push(MinByScore(Scored { score, item }));
            return true;
        }
        // `heap.len() >= k > 0` here; refuse the item if that ever drifts.
        let Some(weakest) = self.heap.peek() else {
            return false;
        };
        if weakest.0.score >= score {
            return false;
        }
        self.heap.pop();
        self.heap.push(MinByScore(Scored { score, item }));
        true
    }

    /// The lowest retained score, or `None` if empty. An incoming item must
    /// beat this to be retained once the collector is full.
    pub fn threshold(&self) -> Option<f32> {
        self.heap.peek().map(|w| w.0.score)
    }

    /// The highest retained score, or `None` if empty.
    pub fn best_score(&self) -> Option<f32> {
        self.heap.iter().map(|w| w.0.score).max_by(f32::total_cmp)
    }

    /// Consumes the collector, returning items sorted by descending score.
    pub fn into_sorted(self) -> Vec<Scored<T>> {
        let mut items: Vec<Scored<T>> = self.heap.into_iter().map(|w| w.0).collect();
        items.sort_by(|a, b| b.score.total_cmp(&a.score));
        items
    }

    /// Merges another collector into this one, keeping the joint top-k.
    /// Used when a query response backtracks and merges with results
    /// gathered along other walks.
    pub fn merge(&mut self, other: TopK<T>) {
        for scored in other.heap {
            self.push(scored.0.score, scored.0.item);
        }
    }
}

impl<T> Extend<(f32, T)> for TopK<T> {
    fn extend<I: IntoIterator<Item = (f32, T)>>(&mut self, iter: I) {
        for (score, item) in iter {
            self.push(score, item);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_best_k() {
        let mut top = TopK::new(3);
        for (i, s) in [0.1, 0.9, 0.5, 0.7, 0.2].iter().enumerate() {
            top.push(*s, i);
        }
        let out = top.into_sorted();
        let items: Vec<_> = out.iter().map(|s| s.item).collect();
        assert_eq!(items, vec![1, 3, 2]);
        assert!((out[0].score - 0.9).abs() < 1e-6);
    }

    #[test]
    fn zero_capacity_retains_nothing() {
        let mut top = TopK::new(0);
        assert!(!top.push(1.0, "x"));
        assert!(top.is_empty());
    }

    #[test]
    fn rejects_non_finite_scores() {
        let mut top = TopK::new(2);
        assert!(!top.push(f32::NAN, 1));
        assert!(!top.push(f32::INFINITY, 2));
        assert!(top.push(0.5, 3));
        assert_eq!(top.len(), 1);
    }

    #[test]
    fn threshold_tracks_weakest() {
        let mut top = TopK::new(2);
        assert_eq!(top.threshold(), None);
        top.push(0.5, 1);
        top.push(0.8, 2);
        assert_eq!(top.threshold(), Some(0.5));
        top.push(0.9, 3); // evicts 0.5
        assert_eq!(top.threshold(), Some(0.8));
        assert_eq!(top.best_score(), Some(0.9));
    }

    #[test]
    fn equal_scores_do_not_evict() {
        let mut top = TopK::new(1);
        assert!(top.push(0.5, "first"));
        assert!(!top.push(0.5, "second"));
        assert_eq!(top.into_sorted()[0].item, "first");
    }

    #[test]
    fn merge_keeps_joint_best() {
        let mut a = TopK::new(2);
        a.push(0.9, "a1");
        a.push(0.1, "a2");
        let mut b = TopK::new(2);
        b.push(0.8, "b1");
        b.push(0.7, "b2");
        a.merge(b);
        let items: Vec<_> = a.into_sorted().into_iter().map(|s| s.item).collect();
        assert_eq!(items, vec!["a1", "b1"]);
    }

    #[test]
    fn extend_from_iterator() {
        let mut top = TopK::new(2);
        top.extend([(0.1, 1), (0.3, 2), (0.2, 3)]);
        let items: Vec<_> = top.into_sorted().into_iter().map(|s| s.item).collect();
        assert_eq!(items, vec![2, 3]);
    }

    #[test]
    fn len_never_exceeds_k() {
        let mut top = TopK::new(5);
        for i in 0..100 {
            top.push(i as f32, i);
            assert!(top.len() <= 5);
        }
        assert_eq!(top.len(), 5);
    }
}
