//! Similarity metrics between embeddings.
//!
//! The bi-encoder model compares query and document embeddings with a cheap
//! interaction function φ — the dot product or cosine similarity (equivalent
//! when embeddings are L2-normalized, paper footnote 7). The forwarding step
//! of the search scheme uses the *dot product* against diffused node
//! embeddings, preserving Eq. (3)'s linearity.

use serde::{Deserialize, Serialize};

use crate::{EmbedError, Embedding};

/// Dot product `a · b`.
///
/// # Errors
///
/// Returns [`EmbedError::DimensionMismatch`] if dimensions differ.
pub fn dot(a: &Embedding, b: &Embedding) -> Result<f32, EmbedError> {
    EmbedError::check_dims(a.dim(), b.dim())?;
    Ok(a.iter().zip(b.iter()).map(|(x, y)| x * y).sum())
}

/// Cosine similarity `a · b / (‖a‖ ‖b‖)`.
///
/// Returns 0 if either vector is zero (no direction ⇒ no similarity).
///
/// # Errors
///
/// Returns [`EmbedError::DimensionMismatch`] if dimensions differ.
pub fn cosine(a: &Embedding, b: &Embedding) -> Result<f32, EmbedError> {
    let d = dot(a, b)?;
    let na = a.norm();
    let nb = b.norm();
    if na == 0.0 || nb == 0.0 {
        Ok(0.0)
    } else {
        Ok(d / (na * nb))
    }
}

/// Euclidean distance `‖a − b‖`.
///
/// # Errors
///
/// Returns [`EmbedError::DimensionMismatch`] if dimensions differ.
pub fn euclidean(a: &Embedding, b: &Embedding) -> Result<f32, EmbedError> {
    Ok(a.squared_distance(b)?.sqrt())
}

/// Choice of interaction function φ for retrieval scoring.
///
/// # Example
///
/// ```
/// use gdsearch_embed::{Embedding, Similarity};
///
/// # fn main() -> Result<(), gdsearch_embed::EmbedError> {
/// let a = Embedding::new(vec![1.0, 0.0]);
/// let b = Embedding::new(vec![2.0, 0.0]);
/// assert_eq!(Similarity::Dot.score(&a, &b)?, 2.0);
/// assert_eq!(Similarity::Cosine.score(&a, &b)?, 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Similarity {
    /// Dot product. Cheapest; scales with vector magnitude, so summing many
    /// document embeddings raises a node's score (paper §IV-A notes this
    /// favors document-rich nodes).
    #[default]
    Dot,
    /// Cosine similarity — dot product of the normalized vectors.
    Cosine,
}

impl Similarity {
    /// Scores `query` against `item`; higher is more relevant.
    ///
    /// # Errors
    ///
    /// Returns [`EmbedError::DimensionMismatch`] if dimensions differ.
    pub fn score(self, query: &Embedding, item: &Embedding) -> Result<f32, EmbedError> {
        match self {
            Similarity::Dot => dot(query, item),
            Similarity::Cosine => cosine(query, item),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(v: &[f32]) -> Embedding {
        Embedding::new(v.to_vec())
    }

    #[test]
    fn dot_product_basic() {
        assert_eq!(dot(&e(&[1.0, 2.0]), &e(&[3.0, 4.0])).unwrap(), 11.0);
        assert_eq!(dot(&e(&[1.0, 0.0]), &e(&[0.0, 1.0])).unwrap(), 0.0);
    }

    #[test]
    fn cosine_range_and_symmetry() {
        let a = e(&[1.0, 2.0, 3.0]);
        let b = e(&[-2.0, 0.5, 1.0]);
        let ab = cosine(&a, &b).unwrap();
        let ba = cosine(&b, &a).unwrap();
        assert!((ab - ba).abs() < 1e-6);
        assert!((-1.0..=1.0).contains(&ab));
        assert!((cosine(&a, &a).unwrap() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_opposite_vectors() {
        let a = e(&[1.0, 0.0]);
        let b = e(&[-3.0, 0.0]);
        assert!((cosine(&a, &b).unwrap() + 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_zero_vector_is_zero() {
        assert_eq!(cosine(&e(&[0.0, 0.0]), &e(&[1.0, 1.0])).unwrap(), 0.0);
    }

    #[test]
    fn euclidean_distance() {
        assert!((euclidean(&e(&[0.0, 0.0]), &e(&[3.0, 4.0])).unwrap() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn mismatched_dims_error() {
        assert!(dot(&e(&[1.0]), &e(&[1.0, 2.0])).is_err());
        assert!(cosine(&e(&[1.0]), &e(&[1.0, 2.0])).is_err());
        assert!(euclidean(&e(&[1.0]), &e(&[1.0, 2.0])).is_err());
    }

    #[test]
    fn dot_equals_cosine_for_normalized() {
        let a = e(&[0.3, -0.7, 0.2]).normalized();
        let b = e(&[0.1, 0.9, -0.4]).normalized();
        let d = dot(&a, &b).unwrap();
        let c = cosine(&a, &b).unwrap();
        assert!(
            (d - c).abs() < 1e-6,
            "footnote 7: dot == cosine when normalized"
        );
    }

    #[test]
    fn enum_scores_match_functions() {
        let a = e(&[1.0, 2.0]);
        let b = e(&[2.0, 1.0]);
        assert_eq!(Similarity::Dot.score(&a, &b).unwrap(), dot(&a, &b).unwrap());
        assert_eq!(
            Similarity::Cosine.score(&a, &b).unwrap(),
            cosine(&a, &b).unwrap()
        );
    }
}
