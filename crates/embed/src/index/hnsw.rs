//! Hierarchical Navigable Small World (HNSW) approximate nearest-neighbor
//! index (Malkov & Yashunin), similarity-maximizing variant.
//!
//! The paper's §III-A motivates ANN engines — "hierarchical navigable small
//! world graphs" by name — as what makes bi-encoder retrieval fast at scale.
//! This implementation follows the standard algorithm with one twist: it
//! maximizes a similarity score (dot/cosine) instead of minimizing a
//! distance, matching the crate's scoring convention.

use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap};

use rand::Rng;

use crate::index::{Hit, VectorIndex};
use crate::{EmbedError, Embedding, Similarity};

/// Total-ordering wrapper so `f32` scores can live in heaps.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF32(f32);

impl Eq for OrdF32 {}

impl PartialOrd for OrdF32 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF32 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Builder for [`HnswIndex`]. See the type-level docs for parameter roles.
///
/// # Example
///
/// ```
/// use gdsearch_embed::index::{HnswIndex, VectorIndex};
/// use gdsearch_embed::{Embedding, Similarity};
/// use rand::SeedableRng;
/// use rand::rngs::StdRng;
///
/// # fn main() -> Result<(), gdsearch_embed::EmbedError> {
/// let items: Vec<Embedding> = (0..50)
///     .map(|i| Embedding::new(vec![(i as f32).sin(), (i as f32).cos()]))
///     .collect();
/// let mut rng = StdRng::seed_from_u64(3);
/// let index = HnswIndex::builder()
///     .max_connections(8)
///     .ef_construction(32)
///     .build(items, Similarity::Cosine, &mut rng)?;
/// let hits = index.search(&Embedding::new(vec![0.0, 1.0]), 5)?;
/// assert_eq!(hits.len(), 5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct HnswBuilder {
    max_connections: usize,
    ef_construction: usize,
    ef_search: usize,
}

impl Default for HnswBuilder {
    fn default() -> Self {
        HnswBuilder {
            max_connections: 16,
            ef_construction: 100,
            ef_search: 50,
        }
    }
}

impl HnswBuilder {
    /// Maximum neighbors per node per layer (`M`). Layer 0 allows `2M`.
    pub fn max_connections(mut self, m: usize) -> Self {
        self.max_connections = m;
        self
    }

    /// Beam width during construction (`efConstruction`).
    pub fn ef_construction(mut self, ef: usize) -> Self {
        self.ef_construction = ef;
        self
    }

    /// Default beam width during search (`efSearch`); raised to `k` when a
    /// query asks for more.
    pub fn ef_search(mut self, ef: usize) -> Self {
        self.ef_search = ef;
        self
    }

    /// Builds the index by sequential insertion.
    ///
    /// # Errors
    ///
    /// Returns [`EmbedError::InvalidParameter`] for zero parameters and
    /// [`EmbedError::DimensionMismatch`] for ragged embeddings.
    pub fn build<R: Rng + ?Sized>(
        self,
        items: Vec<Embedding>,
        similarity: Similarity,
        rng: &mut R,
    ) -> Result<HnswIndex, EmbedError> {
        if self.max_connections == 0 || self.ef_construction == 0 || self.ef_search == 0 {
            return Err(EmbedError::invalid_parameter(
                "hnsw parameters must be positive",
            ));
        }
        let dim = items.first().map(Embedding::dim).unwrap_or(0);
        for e in &items {
            EmbedError::check_dims(dim, e.dim())?;
        }
        let mut index = HnswIndex {
            items: Vec::with_capacity(items.len()),
            layers: Vec::new(),
            levels: Vec::new(),
            entry: None,
            dim,
            similarity,
            m: self.max_connections,
            ef_construction: self.ef_construction,
            ef_search: self.ef_search,
            level_norm: 1.0 / (self.max_connections as f64).ln().max(1e-9),
        };
        for item in items {
            index.insert(item, rng)?;
        }
        Ok(index)
    }
}

/// HNSW approximate nearest-neighbor index.
///
/// Construct through [`HnswIndex::builder`]. Search cost is roughly
/// `O(ef · log n · dim)`; recall against [`super::BruteForceIndex`] rises
/// with `ef_search`.
#[derive(Debug, Clone)]
pub struct HnswIndex {
    items: Vec<Embedding>,
    /// `layers[l][node]` = neighbor ids of `node` at layer `l`; nodes whose
    /// level is below `l` have empty lists there.
    layers: Vec<Vec<Vec<u32>>>,
    /// Top layer of each node.
    levels: Vec<usize>,
    entry: Option<u32>,
    dim: usize,
    similarity: Similarity,
    m: usize,
    ef_construction: usize,
    ef_search: usize,
    level_norm: f64,
}

impl HnswIndex {
    /// Starts building an index with default parameters.
    pub fn builder() -> HnswBuilder {
        HnswBuilder::default()
    }

    /// The similarity metric the index scores with.
    pub fn similarity(&self) -> Similarity {
        self.similarity
    }

    /// Number of graph layers currently in use.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    fn score(&self, a: u32, q: &Embedding) -> f32 {
        self.similarity
            .score(q, &self.items[a as usize])
            .expect("indexed items share the query dimension")
    }

    fn random_level<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        ((-u.ln()) * self.level_norm).floor() as usize
    }

    fn insert<R: Rng + ?Sized>(&mut self, item: Embedding, rng: &mut R) -> Result<(), EmbedError> {
        let id = self.items.len() as u32;
        let level = self.random_level(rng).min(32);
        self.items.push(item);
        self.levels.push(level);
        while self.layers.len() <= level {
            self.layers
                .push(vec![Vec::new(); self.items.len().saturating_sub(1)]);
        }
        for layer in &mut self.layers {
            layer.push(Vec::new());
        }
        let Some(mut ep) = self.entry else {
            self.entry = Some(id);
            return Ok(());
        };
        let q = self.items[id as usize].clone();
        let top = self.layers.len() - 1;
        let ep_level = self.levels[ep as usize];
        // Greedy descent through layers above the new node's level.
        for l in ((level + 1)..=ep_level.min(top)).rev() {
            ep = self.greedy_step(&q, ep, l);
        }
        // Beam search + linking on layers <= level.
        for l in (0..=level.min(ep_level.min(top))).rev() {
            let found = self.search_layer(&q, &[ep], self.ef_construction, l);
            let max_links = if l == 0 { 2 * self.m } else { self.m };
            let selected: Vec<u32> = found.iter().take(self.m).map(|h| h.id as u32).collect();
            for &n in &selected {
                self.layers[l][id as usize].push(n);
                self.layers[l][n as usize].push(id);
                if self.layers[l][n as usize].len() > max_links {
                    self.prune(n, l, max_links);
                }
            }
            if let Some(best) = found.first() {
                ep = best.id as u32;
            }
        }
        if level > self.levels[self.entry.expect("entry set") as usize] {
            self.entry = Some(id);
        }
        Ok(())
    }

    /// Keeps only the `max_links` most similar neighbors of `node` at layer
    /// `l`.
    fn prune(&mut self, node: u32, l: usize, max_links: usize) {
        let anchor = self.items[node as usize].clone();
        let mut scored: Vec<(OrdF32, u32)> = self.layers[l][node as usize]
            .iter()
            .map(|&n| (OrdF32(self.score(n, &anchor)), n))
            .collect();
        scored.sort_by_key(|&(score, _)| std::cmp::Reverse(score));
        scored.truncate(max_links);
        self.layers[l][node as usize] = scored.into_iter().map(|(_, n)| n).collect();
    }

    /// One greedy hill-climbing pass at layer `l`: repeatedly move to the
    /// most similar neighbor until no improvement.
    fn greedy_step(&self, q: &Embedding, mut ep: u32, l: usize) -> u32 {
        let mut best = self.score(ep, q);
        loop {
            let mut improved = false;
            for &n in &self.layers[l][ep as usize] {
                let s = self.score(n, q);
                if s > best {
                    best = s;
                    ep = n;
                    improved = true;
                }
            }
            if !improved {
                return ep;
            }
        }
    }

    /// Beam search at layer `l` from the given entry points; returns up to
    /// `ef` hits sorted by descending score.
    fn search_layer(&self, q: &Embedding, entries: &[u32], ef: usize, l: usize) -> Vec<Hit> {
        let mut visited: BTreeSet<u32> = BTreeSet::new();
        // Candidates: max-heap on score (best first).
        let mut candidates: BinaryHeap<(OrdF32, u32)> = BinaryHeap::new();
        // Results: min-heap on score (worst first) bounded to ef.
        let mut results: BinaryHeap<Reverse<(OrdF32, u32)>> = BinaryHeap::new();
        for &e in entries {
            if visited.insert(e) {
                let s = OrdF32(self.score(e, q));
                candidates.push((s, e));
                results.push(Reverse((s, e)));
            }
        }
        while let Some((s, c)) = candidates.pop() {
            let worst = results
                .peek()
                .map(|Reverse((w, _))| *w)
                .unwrap_or(OrdF32(f32::NEG_INFINITY));
            if results.len() >= ef && s < worst {
                break;
            }
            for &n in &self.layers[l][c as usize] {
                if !visited.insert(n) {
                    continue;
                }
                let sn = OrdF32(self.score(n, q));
                let worst = results
                    .peek()
                    .map(|Reverse((w, _))| *w)
                    .unwrap_or(OrdF32(f32::NEG_INFINITY));
                if results.len() < ef || sn > worst {
                    candidates.push((sn, n));
                    results.push(Reverse((sn, n)));
                    if results.len() > ef {
                        results.pop();
                    }
                }
            }
        }
        let mut hits: Vec<Hit> = results
            .into_iter()
            .map(|Reverse((s, id))| Hit {
                id: id as usize,
                score: s.0,
            })
            .collect();
        hits.sort_by(|a, b| b.score.total_cmp(&a.score));
        hits
    }
}

impl VectorIndex for HnswIndex {
    fn len(&self) -> usize {
        self.items.len()
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn search(&self, query: &Embedding, k: usize) -> Result<Vec<Hit>, EmbedError> {
        let Some(mut ep) = self.entry else {
            return Ok(Vec::new());
        };
        EmbedError::check_dims(self.dim, query.dim())?;
        if k == 0 {
            return Ok(Vec::new());
        }
        let top = self.layers.len() - 1;
        let ep_level = self.levels[ep as usize].min(top);
        for l in (1..=ep_level).rev() {
            ep = self.greedy_step(query, ep, l);
        }
        let ef = self.ef_search.max(k);
        let mut hits = self.search_layer(query, &[ep], ef, 0);
        hits.truncate(k);
        Ok(hits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{recall, BruteForceIndex};
    use crate::synthetic::SyntheticCorpus;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn corpus_vectors(seed: u64, n: usize) -> Vec<Embedding> {
        SyntheticCorpus::builder()
            .vocab_size(n)
            .dim(32)
            .num_topics(12)
            .generate(&mut rng(seed))
            .unwrap()
            .embeddings()
            .to_vec()
    }

    #[test]
    fn empty_index_returns_nothing() {
        let idx = HnswIndex::builder()
            .build(vec![], Similarity::Cosine, &mut rng(1))
            .unwrap();
        assert!(idx.is_empty());
        assert!(idx.search(&Embedding::zeros(4), 3).unwrap().is_empty());
    }

    #[test]
    fn single_item() {
        let idx = HnswIndex::builder()
            .build(
                vec![Embedding::new(vec![1.0, 0.0])],
                Similarity::Cosine,
                &mut rng(2),
            )
            .unwrap();
        let hits = idx.search(&Embedding::new(vec![1.0, 0.1]), 3).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, 0);
    }

    #[test]
    fn finds_exact_match_in_small_collection() {
        let items = corpus_vectors(3, 200);
        let idx = HnswIndex::builder()
            .build(items.clone(), Similarity::Cosine, &mut rng(4))
            .unwrap();
        for probe in [0usize, 17, 99, 199] {
            let hits = idx.search(&items[probe], 1).unwrap();
            assert_eq!(hits[0].id, probe, "self-query must return the item");
            assert!((hits[0].score - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn recall_against_brute_force() {
        let items = corpus_vectors(5, 500);
        let brute = BruteForceIndex::build(items.clone(), Similarity::Cosine).unwrap();
        let hnsw = HnswIndex::builder()
            .max_connections(16)
            .ef_construction(100)
            .ef_search(64)
            .build(items.clone(), Similarity::Cosine, &mut rng(6))
            .unwrap();
        let mut total = 0.0;
        let queries = 25;
        for i in 0..queries {
            let q = &items[i * 7];
            let exact = brute.search(q, 10).unwrap();
            let approx = hnsw.search(q, 10).unwrap();
            total += recall(&exact, &approx);
        }
        let avg = total / queries as f64;
        assert!(avg >= 0.85, "average recall@10 too low: {avg}");
    }

    #[test]
    fn results_are_sorted_descending() {
        let items = corpus_vectors(7, 100);
        let idx = HnswIndex::builder()
            .build(items.clone(), Similarity::Cosine, &mut rng(8))
            .unwrap();
        let hits = idx.search(&items[0], 10).unwrap();
        for w in hits.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn degree_bound_is_respected() {
        let items = corpus_vectors(9, 300);
        let m = 8;
        let idx = HnswIndex::builder()
            .max_connections(m)
            .build(items, Similarity::Cosine, &mut rng(10))
            .unwrap();
        for (l, layer) in idx.layers.iter().enumerate() {
            let bound = if l == 0 { 2 * m } else { m };
            for links in layer {
                assert!(
                    links.len() <= bound + m,
                    "layer {l} node exceeds degree bound: {}",
                    links.len()
                );
            }
        }
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(HnswIndex::builder()
            .max_connections(0)
            .build(vec![], Similarity::Dot, &mut rng(1))
            .is_err());
        assert!(HnswIndex::builder()
            .ef_construction(0)
            .build(vec![], Similarity::Dot, &mut rng(1))
            .is_err());
    }

    #[test]
    fn dimension_mismatch_on_search() {
        let idx = HnswIndex::builder()
            .build(vec![Embedding::zeros(3)], Similarity::Cosine, &mut rng(11))
            .unwrap();
        assert!(idx.search(&Embedding::zeros(2), 1).is_err());
    }
}
