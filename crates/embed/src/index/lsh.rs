//! Random-hyperplane locality-sensitive hashing (SimHash) index.
//!
//! The second ANN family named in the paper's §III-A. Each table hashes an
//! embedding to a `bits`-wide signature of hyperplane signs; vectors with
//! high cosine similarity collide with probability `(1 − θ/π)^bits` per
//! table. Queries gather candidates from all tables' matching buckets and
//! re-rank them exactly.

use std::collections::BTreeMap;

use rand::Rng;

use crate::index::{Hit, VectorIndex};
use crate::synthetic::random_unit_vector;
use crate::topk::TopK;
use crate::{similarity, EmbedError, Embedding};

/// Builder for [`LshIndex`].
///
/// # Example
///
/// ```
/// use gdsearch_embed::index::{LshIndex, VectorIndex};
/// use gdsearch_embed::Embedding;
/// use rand::SeedableRng;
/// use rand::rngs::StdRng;
///
/// # fn main() -> Result<(), gdsearch_embed::EmbedError> {
/// let items: Vec<Embedding> = (0..100)
///     .map(|i| Embedding::new(vec![(i as f32).sin(), (i as f32).cos(), 1.0]).normalized())
///     .collect();
/// let mut rng = StdRng::seed_from_u64(1);
/// let index = LshIndex::builder()
///     .num_tables(8)
///     .bits(6)
///     .build(items.clone(), &mut rng)?;
/// let hits = index.search(&items[42], 5)?;
/// assert_eq!(hits[0].id, 42);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LshBuilder {
    num_tables: usize,
    bits: usize,
}

impl Default for LshBuilder {
    fn default() -> Self {
        LshBuilder {
            num_tables: 16,
            bits: 8,
        }
    }
}

impl LshBuilder {
    /// Number of independent hash tables. More tables raise recall at the
    /// cost of memory and candidate volume.
    pub fn num_tables(mut self, tables: usize) -> Self {
        self.num_tables = tables;
        self
    }

    /// Signature width per table (max 32). More bits shrink buckets: higher
    /// precision, lower per-table recall.
    pub fn bits(mut self, bits: usize) -> Self {
        self.bits = bits;
        self
    }

    /// Builds the index.
    ///
    /// # Errors
    ///
    /// Returns [`EmbedError::InvalidParameter`] for zero tables, or bits
    /// outside `1..=32`, and [`EmbedError::DimensionMismatch`] for ragged
    /// embeddings.
    pub fn build<R: Rng + ?Sized>(
        self,
        items: Vec<Embedding>,
        rng: &mut R,
    ) -> Result<LshIndex, EmbedError> {
        if self.num_tables == 0 {
            return Err(EmbedError::invalid_parameter("num_tables must be positive"));
        }
        if self.bits == 0 || self.bits > 32 {
            return Err(EmbedError::invalid_parameter("bits must lie in 1..=32"));
        }
        let dim = items.first().map(Embedding::dim).unwrap_or(0);
        for e in &items {
            EmbedError::check_dims(dim, e.dim())?;
        }
        let mut tables = Vec::with_capacity(self.num_tables);
        for _ in 0..self.num_tables {
            let planes: Vec<Embedding> = (0..self.bits)
                .map(|_| random_unit_vector(dim.max(1), rng))
                .collect();
            let mut buckets: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
            for (i, item) in items.iter().enumerate() {
                let sig = signature(&planes, item);
                buckets.entry(sig).or_default().push(i as u32);
            }
            tables.push(Table { planes, buckets });
        }
        Ok(LshIndex { items, dim, tables })
    }
}

#[derive(Debug, Clone)]
struct Table {
    planes: Vec<Embedding>,
    buckets: BTreeMap<u32, Vec<u32>>,
}

/// SimHash signature of `item` under the given hyperplanes.
fn signature(planes: &[Embedding], item: &Embedding) -> u32 {
    let mut sig = 0u32;
    for (b, plane) in planes.iter().enumerate() {
        let s: f32 = plane.iter().zip(item.iter()).map(|(p, x)| p * x).sum();
        if s >= 0.0 {
            sig |= 1 << b;
        }
    }
    sig
}

/// Random-hyperplane LSH index, scoring candidates by cosine similarity.
///
/// Search is *approximate*: only vectors sharing a bucket with the query in
/// at least one table are considered. With default parameters and clustered
/// data, recall of the top hit is high; tune via [`LshIndex::builder`].
#[derive(Debug, Clone)]
pub struct LshIndex {
    items: Vec<Embedding>,
    dim: usize,
    tables: Vec<Table>,
}

impl LshIndex {
    /// Starts building an index with default parameters (16 tables × 8
    /// bits).
    pub fn builder() -> LshBuilder {
        LshBuilder::default()
    }

    /// Number of hash tables.
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// Candidate ids for a query: the union of its buckets across tables.
    pub fn candidates(&self, query: &Embedding) -> Vec<usize> {
        let mut seen: Vec<bool> = vec![false; self.items.len()];
        let mut out = Vec::new();
        for table in &self.tables {
            let sig = signature(&table.planes, query);
            if let Some(bucket) = table.buckets.get(&sig) {
                for &i in bucket {
                    if !seen[i as usize] {
                        seen[i as usize] = true;
                        out.push(i as usize);
                    }
                }
            }
        }
        out
    }
}

impl VectorIndex for LshIndex {
    fn len(&self) -> usize {
        self.items.len()
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn search(&self, query: &Embedding, k: usize) -> Result<Vec<Hit>, EmbedError> {
        if self.items.is_empty() {
            return Ok(Vec::new());
        }
        EmbedError::check_dims(self.dim, query.dim())?;
        let mut top = TopK::new(k);
        for id in self.candidates(query) {
            let score = similarity::cosine(query, &self.items[id])?;
            top.push(score, id);
        }
        Ok(top
            .into_sorted()
            .into_iter()
            .map(|s| Hit {
                id: s.item,
                score: s.score,
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{recall, BruteForceIndex};
    use crate::synthetic::SyntheticCorpus;
    use crate::Similarity;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn clustered(seed: u64, n: usize) -> Vec<Embedding> {
        SyntheticCorpus::builder()
            .vocab_size(n)
            .dim(32)
            .num_topics(10)
            .topic_noise(0.4)
            .background_fraction(0.1)
            .generate(&mut rng(seed))
            .unwrap()
            .embeddings()
            .to_vec()
    }

    #[test]
    fn identical_vector_is_always_found() {
        let items = clustered(1, 300);
        let idx = LshIndex::builder()
            .build(items.clone(), &mut rng(2))
            .unwrap();
        // A vector hashes to its own bucket in every table, so self-queries
        // always succeed.
        for probe in [0usize, 50, 299] {
            let hits = idx.search(&items[probe], 1).unwrap();
            assert_eq!(hits[0].id, probe);
        }
    }

    #[test]
    fn recall_of_near_duplicates_is_high() {
        let items = clustered(3, 400);
        let brute = BruteForceIndex::build(items.clone(), Similarity::Cosine).unwrap();
        let idx = LshIndex::builder()
            .num_tables(24)
            .bits(6)
            .build(items.clone(), &mut rng(4))
            .unwrap();
        let mut total = 0.0;
        let queries = 20;
        for i in 0..queries {
            let q = &items[i * 3];
            let exact = brute.search(q, 5).unwrap();
            let approx = idx.search(q, 5).unwrap();
            total += recall(&exact, &approx);
        }
        let avg = total / queries as f64;
        assert!(avg >= 0.5, "average recall@5 too low: {avg}");
    }

    #[test]
    fn empty_index_is_usable() {
        let idx = LshIndex::builder().build(vec![], &mut rng(5)).unwrap();
        assert!(idx.is_empty());
        assert!(idx.search(&Embedding::zeros(3), 2).unwrap().is_empty());
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(LshIndex::builder()
            .num_tables(0)
            .build(vec![], &mut rng(1))
            .is_err());
        assert!(LshIndex::builder()
            .bits(0)
            .build(vec![], &mut rng(1))
            .is_err());
        assert!(LshIndex::builder()
            .bits(40)
            .build(vec![], &mut rng(1))
            .is_err());
    }

    #[test]
    fn dimension_mismatch_on_search() {
        let items = clustered(6, 50);
        let idx = LshIndex::builder().build(items, &mut rng(7)).unwrap();
        assert!(idx.search(&Embedding::zeros(2), 1).is_err());
    }

    #[test]
    fn candidates_shrink_with_more_bits() {
        let items = clustered(8, 500);
        let coarse = LshIndex::builder()
            .num_tables(4)
            .bits(2)
            .build(items.clone(), &mut rng(9))
            .unwrap();
        let fine = LshIndex::builder()
            .num_tables(4)
            .bits(16)
            .build(items.clone(), &mut rng(9))
            .unwrap();
        let q = &items[0];
        assert!(coarse.candidates(q).len() >= fine.candidates(q).len());
    }

    #[test]
    fn signature_is_deterministic() {
        let items = clustered(10, 20);
        let idx = LshIndex::builder()
            .build(items.clone(), &mut rng(11))
            .unwrap();
        let a = idx.candidates(&items[0]);
        let b = idx.candidates(&items[0]);
        assert_eq!(a, b);
    }
}
