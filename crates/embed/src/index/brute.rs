//! Exact brute-force nearest-neighbor index.

use crate::index::{Hit, VectorIndex};
use crate::topk::TopK;
use crate::{EmbedError, Embedding, Similarity};

/// Exact nearest-neighbor search by linear scan.
///
/// `O(n · dim)` per query — optimal for the small per-node document
/// collections of the paper's experiments, and the ground truth used to
/// measure approximate-index recall.
///
/// # Example
///
/// ```
/// use gdsearch_embed::index::{BruteForceIndex, VectorIndex};
/// use gdsearch_embed::{Embedding, Similarity};
///
/// # fn main() -> Result<(), gdsearch_embed::EmbedError> {
/// let index = BruteForceIndex::build(
///     vec![
///         Embedding::new(vec![1.0, 0.0]),
///         Embedding::new(vec![0.0, 1.0]),
///     ],
///     Similarity::Dot,
/// )?;
/// let hits = index.search(&Embedding::new(vec![0.9, 0.1]), 1)?;
/// assert_eq!(hits[0].id, 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BruteForceIndex {
    items: Vec<Embedding>,
    dim: usize,
    similarity: Similarity,
}

impl BruteForceIndex {
    /// Builds the index over the given embeddings.
    ///
    /// An empty collection is allowed (searches return no hits) so that
    /// document-free nodes can still expose a retrieval interface.
    ///
    /// # Errors
    ///
    /// Returns [`EmbedError::DimensionMismatch`] if embeddings disagree on
    /// dimensionality.
    pub fn build(items: Vec<Embedding>, similarity: Similarity) -> Result<Self, EmbedError> {
        let dim = items.first().map(Embedding::dim).unwrap_or(0);
        for e in &items {
            EmbedError::check_dims(dim, e.dim())?;
        }
        Ok(BruteForceIndex {
            items,
            dim,
            similarity,
        })
    }

    /// The similarity metric the index scores with.
    pub fn similarity(&self) -> Similarity {
        self.similarity
    }

    /// The indexed embedding with the given id.
    pub fn item(&self, id: usize) -> Option<&Embedding> {
        self.items.get(id)
    }
}

impl VectorIndex for BruteForceIndex {
    fn len(&self) -> usize {
        self.items.len()
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn search(&self, query: &Embedding, k: usize) -> Result<Vec<Hit>, EmbedError> {
        if self.items.is_empty() {
            return Ok(Vec::new());
        }
        EmbedError::check_dims(self.dim, query.dim())?;
        let mut top = TopK::new(k);
        for (id, item) in self.items.iter().enumerate() {
            let score = self.similarity.score(query, item)?;
            top.push(score, id);
        }
        Ok(top
            .into_sorted()
            .into_iter()
            .map(|s| Hit {
                id: s.item,
                score: s.score,
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BruteForceIndex {
        BruteForceIndex::build(
            vec![
                Embedding::new(vec![1.0, 0.0, 0.0]),
                Embedding::new(vec![0.0, 1.0, 0.0]),
                Embedding::new(vec![0.0, 0.0, 1.0]),
                Embedding::new(vec![0.7, 0.7, 0.0]),
            ],
            Similarity::Cosine,
        )
        .unwrap()
    }

    #[test]
    fn returns_sorted_top_k() {
        let idx = sample();
        let hits = idx.search(&Embedding::new(vec![1.0, 0.5, 0.0]), 3).unwrap();
        assert_eq!(hits.len(), 3);
        assert_eq!(hits[0].id, 3); // the diagonal vector wins on cosine
        assert!(hits[0].score >= hits[1].score);
        assert!(hits[1].score >= hits[2].score);
    }

    #[test]
    fn k_larger_than_collection() {
        let idx = sample();
        let hits = idx
            .search(&Embedding::new(vec![1.0, 0.0, 0.0]), 10)
            .unwrap();
        assert_eq!(hits.len(), 4);
    }

    #[test]
    fn k_zero_returns_nothing() {
        let idx = sample();
        assert!(idx
            .search(&Embedding::new(vec![1.0, 0.0, 0.0]), 0)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn empty_index_is_usable() {
        let idx = BruteForceIndex::build(vec![], Similarity::Dot).unwrap();
        assert!(idx.is_empty());
        assert!(idx
            .search(&Embedding::new(vec![1.0, 2.0]), 5)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn dimension_mismatch_on_build_and_search() {
        assert!(BruteForceIndex::build(
            vec![Embedding::zeros(2), Embedding::zeros(3)],
            Similarity::Dot
        )
        .is_err());
        let idx = sample();
        assert!(idx.search(&Embedding::zeros(2), 1).is_err());
    }

    #[test]
    fn dot_favors_magnitude() {
        let idx = BruteForceIndex::build(
            vec![
                Embedding::new(vec![1.0, 0.0]),
                Embedding::new(vec![5.0, 0.0]),
            ],
            Similarity::Dot,
        )
        .unwrap();
        let hits = idx.search(&Embedding::new(vec![1.0, 0.0]), 2).unwrap();
        assert_eq!(hits[0].id, 1, "dot product prefers the longer vector");
    }

    #[test]
    fn item_accessor() {
        let idx = sample();
        assert!(idx.item(0).is_some());
        assert!(idx.item(10).is_none());
    }
}
