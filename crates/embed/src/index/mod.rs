//! Nearest-neighbor indexes over embedding collections.
//!
//! Node-local retrieval in the search scheme is a top-k nearest-neighbor
//! query over the node's document embeddings (paper §III-A). Three engines
//! are provided:
//!
//! * [`BruteForceIndex`] — exact linear scan; the reference every
//!   approximate engine is tested against, and the right choice for the
//!   small per-node collections of the paper's experiments;
//! * [`HnswIndex`] — hierarchical navigable small-world graph, the ANN
//!   family the paper cites for sub-linear query time;
//! * [`LshIndex`] — random-hyperplane locality-sensitive hashing, the other
//!   ANN family named in §III-A.
//!
//! All engines score with a configurable [`Similarity`](crate::Similarity) (LSH is inherently
//! cosine-oriented) and return [`Hit`]s sorted by descending score.

mod brute;
mod hnsw;
mod lsh;

pub use brute::BruteForceIndex;
pub use hnsw::{HnswBuilder, HnswIndex};
pub use lsh::{LshBuilder, LshIndex};

use serde::{Deserialize, Serialize};

use crate::{EmbedError, Embedding};

/// One retrieval result: the item's index in the build-time collection and
/// its similarity score to the query.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Hit {
    /// Index of the item in the collection the index was built from.
    pub id: usize,
    /// Similarity score; higher is more relevant.
    pub score: f32,
}

/// Common interface of nearest-neighbor indexes.
///
/// The trait is object-safe, so heterogeneous engines can be swapped behind
/// `Box<dyn VectorIndex>` in node configurations.
pub trait VectorIndex {
    /// Number of indexed items.
    fn len(&self) -> usize;

    /// Whether the index is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Dimensionality of indexed embeddings.
    fn dim(&self) -> usize;

    /// Returns up to `k` hits sorted by descending score.
    ///
    /// # Errors
    ///
    /// Returns [`EmbedError::DimensionMismatch`] if `query.dim()` differs
    /// from the indexed dimensionality.
    fn search(&self, query: &Embedding, k: usize) -> Result<Vec<Hit>, EmbedError>;
}

/// Recall@k of `approx` against ground truth `exact`: the fraction of exact
/// ids that the approximate result retrieved.
///
/// Returns 1.0 when the exact result is empty (nothing to miss).
pub fn recall(exact: &[Hit], approx: &[Hit]) -> f64 {
    if exact.is_empty() {
        return 1.0;
    }
    let truth: std::collections::BTreeSet<usize> = exact.iter().map(|h| h.id).collect();
    let found = approx.iter().filter(|h| truth.contains(&h.id)).count();
    found as f64 / truth.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recall_of_identical_results_is_one() {
        let hits = vec![Hit { id: 1, score: 0.9 }, Hit { id: 2, score: 0.8 }];
        assert_eq!(recall(&hits, &hits), 1.0);
    }

    #[test]
    fn recall_counts_overlap() {
        let exact = vec![
            Hit { id: 1, score: 0.9 },
            Hit { id: 2, score: 0.8 },
            Hit { id: 3, score: 0.7 },
            Hit { id: 4, score: 0.6 },
        ];
        let approx = vec![Hit { id: 2, score: 0.8 }, Hit { id: 9, score: 0.5 }];
        assert!((recall(&exact, &approx) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn recall_with_empty_truth_is_one() {
        assert_eq!(recall(&[], &[Hit { id: 0, score: 0.0 }]), 1.0);
    }
}
