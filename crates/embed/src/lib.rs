//! Dense-retrieval substrate for the `gdsearch` decentralized-search stack.
//!
//! The reproduced paper (Giatsoglou et al., ICDCS 2022) casts retrieval in
//! the bi-encoder vector-space model: documents and queries are embedding
//! vectors, relevance is the dot product / cosine similarity, and retrieval
//! is a (approximate) nearest-neighbor problem. This crate supplies that
//! machinery:
//!
//! * [`Embedding`] — a dimension-checked `f32` vector with the linear
//!   operations node personalization needs (sum, scale, normalize);
//! * [`similarity`] — dot product, cosine and Euclidean metrics;
//! * [`topk`] — bounded top-k selection by score;
//! * [`Corpus`] / [`synthetic`] — word corpora, including a synthetic
//!   GloVe-like topic-mixture corpus (the paper uses GloVe 300-d vectors;
//!   see `DESIGN.md` for the substitution rationale);
//! * [`querygen`] — the paper's §V-B query/gold-document sampling: random
//!   query words whose nearest neighbor has cosine ≥ 0.6;
//! * [`index`] — exact brute-force, HNSW and random-hyperplane LSH indexes
//!   (the ANN algorithms referenced in §II-B/III-A).
//!
//! # Example
//!
//! ```
//! use gdsearch_embed::{similarity, Embedding};
//!
//! # fn main() -> Result<(), gdsearch_embed::EmbedError> {
//! let doc = Embedding::new(vec![1.0, 0.0, 1.0]);
//! let query = Embedding::new(vec![1.0, 1.0, 0.0]);
//! let score = similarity::dot(&doc, &query)?;
//! assert_eq!(score, 1.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod corpus;
mod error;
pub mod index;
pub mod querygen;
pub mod similarity;
pub mod synthetic;
pub mod topk;
mod vector;

pub use corpus::{Corpus, WordId};
pub use error::EmbedError;
pub use similarity::Similarity;
pub use vector::Embedding;
