use std::error::Error;
use std::fmt;

/// Errors produced by embedding and retrieval operations.
#[derive(Debug)]
#[non_exhaustive]
pub enum EmbedError {
    /// Two vectors (or a vector and a corpus) disagree on dimensionality.
    DimensionMismatch {
        /// Dimension expected by the receiver.
        expected: usize,
        /// Dimension actually supplied.
        got: usize,
    },
    /// An operation that needs at least one vector received none.
    EmptyCorpus,
    /// A parameter is outside its valid domain.
    InvalidParameter {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
}

impl EmbedError {
    pub(crate) fn invalid_parameter(reason: impl Into<String>) -> Self {
        EmbedError::InvalidParameter {
            reason: reason.into(),
        }
    }

    pub(crate) fn check_dims(expected: usize, got: usize) -> Result<(), EmbedError> {
        if expected == got {
            Ok(())
        } else {
            Err(EmbedError::DimensionMismatch { expected, got })
        }
    }
}

impl fmt::Display for EmbedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmbedError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            EmbedError::EmptyCorpus => write!(f, "operation requires a non-empty corpus"),
            EmbedError::InvalidParameter { reason } => write!(f, "invalid parameter: {reason}"),
        }
    }
}

impl Error for EmbedError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = EmbedError::DimensionMismatch {
            expected: 300,
            got: 64,
        };
        assert_eq!(e.to_string(), "dimension mismatch: expected 300, got 64");
        assert!(EmbedError::EmptyCorpus.to_string().contains("non-empty"));
    }

    #[test]
    fn check_dims_helper() {
        assert!(EmbedError::check_dims(3, 3).is_ok());
        assert!(EmbedError::check_dims(3, 4).is_err());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EmbedError>();
    }
}
