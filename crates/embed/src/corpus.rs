use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{similarity, EmbedError, Embedding};

/// Identifier of a word (document) in a [`Corpus`]: a dense zero-based index.
///
/// In the paper's evaluation every "document" is a single word vector from
/// the GloVe vocabulary; we keep that terminology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct WordId(u32);

impl WordId {
    /// Creates a word id from a raw index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        WordId(index)
    }

    /// Raw index as `usize`, for slice indexing.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Raw index as `u32`.
    #[inline]
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for WordId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0)
    }
}

impl From<u32> for WordId {
    fn from(index: u32) -> Self {
        WordId(index)
    }
}

impl From<WordId> for u32 {
    fn from(id: WordId) -> Self {
        id.0
    }
}

/// A vocabulary of word embeddings with uniform dimensionality.
///
/// The corpus is the global document universe of an experiment: queries,
/// gold documents and the irrelevant pool are all drawn from it
/// (paper §V-B).
///
/// # Example
///
/// ```
/// use gdsearch_embed::{Corpus, Embedding, WordId};
///
/// # fn main() -> Result<(), gdsearch_embed::EmbedError> {
/// let corpus = Corpus::from_embeddings(vec![
///     Embedding::new(vec![1.0, 0.0]),
///     Embedding::new(vec![0.9, 0.1]),
///     Embedding::new(vec![0.0, 1.0]),
/// ])?;
/// assert_eq!(corpus.len(), 3);
/// let (nn, sim) = corpus.nearest_neighbor(WordId::new(0))?;
/// assert_eq!(nn, WordId::new(1));
/// assert!(sim > 0.9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Corpus {
    dim: usize,
    embeddings: Vec<Embedding>,
}

impl Corpus {
    /// Builds a corpus from embeddings, validating uniform dimensionality.
    ///
    /// # Errors
    ///
    /// Returns [`EmbedError::EmptyCorpus`] for an empty input and
    /// [`EmbedError::DimensionMismatch`] if dimensions disagree.
    pub fn from_embeddings(embeddings: Vec<Embedding>) -> Result<Self, EmbedError> {
        let Some(first) = embeddings.first() else {
            return Err(EmbedError::EmptyCorpus);
        };
        let dim = first.dim();
        for e in &embeddings {
            EmbedError::check_dims(dim, e.dim())?;
        }
        Ok(Corpus { dim, embeddings })
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        self.embeddings.len()
    }

    /// Whether the corpus has no words (never true for a constructed corpus,
    /// but required by convention alongside [`Corpus::len`]).
    pub fn is_empty(&self) -> bool {
        self.embeddings.is_empty()
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The embedding of `word`.
    ///
    /// # Panics
    ///
    /// Panics if `word` is out of range; use [`Corpus::get`] for a checked
    /// variant.
    pub fn embedding(&self, word: WordId) -> &Embedding {
        &self.embeddings[word.index()]
    }

    /// The embedding of `word`, or `None` if out of range.
    pub fn get(&self, word: WordId) -> Option<&Embedding> {
        self.embeddings.get(word.index())
    }

    /// Iterates over `(id, embedding)` pairs.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = (WordId, &Embedding)> {
        self.embeddings
            .iter()
            .enumerate()
            .map(|(i, e)| (WordId::new(i as u32), e))
    }

    /// All word ids.
    pub fn word_ids(&self) -> impl ExactSizeIterator<Item = WordId> + Clone {
        (0..self.embeddings.len() as u32).map(WordId)
    }

    /// Raw embedding storage, indexed by word id.
    pub fn embeddings(&self) -> &[Embedding] {
        &self.embeddings
    }

    /// Finds the cosine-nearest neighbor of `word` (excluding itself).
    /// Returns the neighbor and its cosine similarity.
    ///
    /// # Errors
    ///
    /// Returns [`EmbedError::EmptyCorpus`] if the corpus has fewer than two
    /// words and [`EmbedError::InvalidParameter`] if `word` is out of range.
    pub fn nearest_neighbor(&self, word: WordId) -> Result<(WordId, f32), EmbedError> {
        if self.len() < 2 {
            return Err(EmbedError::EmptyCorpus);
        }
        let target = self
            .get(word)
            .ok_or_else(|| EmbedError::invalid_parameter(format!("word {word} out of range")))?;
        let mut best: Option<(WordId, f32)> = None;
        for (id, e) in self.iter() {
            if id == word {
                continue;
            }
            let sim = similarity::cosine(target, e)?;
            if best.map(|(_, s)| sim > s).unwrap_or(true) {
                best = Some((id, sim));
            }
        }
        Ok(best.expect("corpus has at least one other word"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Corpus {
        Corpus::from_embeddings(vec![
            Embedding::new(vec![1.0, 0.0]),
            Embedding::new(vec![0.8, 0.2]),
            Embedding::new(vec![0.0, 1.0]),
        ])
        .unwrap()
    }

    #[test]
    fn construction_checks_dimensions() {
        let err = Corpus::from_embeddings(vec![
            Embedding::new(vec![1.0, 0.0]),
            Embedding::new(vec![1.0, 0.0, 0.0]),
        ])
        .unwrap_err();
        assert!(matches!(err, EmbedError::DimensionMismatch { .. }));
    }

    #[test]
    fn empty_corpus_rejected() {
        assert!(matches!(
            Corpus::from_embeddings(vec![]),
            Err(EmbedError::EmptyCorpus)
        ));
    }

    #[test]
    fn accessors() {
        let c = small();
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
        assert_eq!(c.dim(), 2);
        assert_eq!(c.embedding(WordId::new(2)).as_slice(), &[0.0, 1.0]);
        assert!(c.get(WordId::new(3)).is_none());
        assert_eq!(c.iter().count(), 3);
        assert_eq!(c.word_ids().count(), 3);
    }

    #[test]
    fn nearest_neighbor_excludes_self() {
        let c = small();
        let (nn, sim) = c.nearest_neighbor(WordId::new(0)).unwrap();
        assert_eq!(nn, WordId::new(1));
        assert!(sim > 0.9 && sim < 1.0);
    }

    #[test]
    fn nearest_neighbor_errors() {
        let c = Corpus::from_embeddings(vec![Embedding::new(vec![1.0])]).unwrap();
        assert!(c.nearest_neighbor(WordId::new(0)).is_err());
        let c = small();
        assert!(c.nearest_neighbor(WordId::new(9)).is_err());
    }

    #[test]
    fn word_id_display_and_conversion() {
        let w = WordId::from(3u32);
        assert_eq!(w.to_string(), "w3");
        assert_eq!(u32::from(w), 3);
    }
}
