//! Synthetic GloVe-like corpus generation.
//!
//! The paper evaluates on GloVe 300-d word embeddings, using only their
//! cosine-similarity geometry: some words have close neighbors (cosine
//! ≥ 0.6 — these become query/gold pairs) while most pairs are near
//! orthogonal (the irrelevant pool). This module generates corpora with
//! exactly that geometry from a topic-mixture model:
//!
//! * `num_topics` topic centers are drawn uniformly on the unit sphere;
//! * a *topic word* is `normalize(center + n)` where the perturbation `n`
//!   is isotropic Gaussian with total L2 magnitude ≈ `noise` — words of the
//!   same topic have expected cosine `≈ 1 / (1 + noise²)`, so `noise = 0.5`
//!   yields within-topic similarity ≈ 0.8 and plenty of pairs above the
//!   paper's 0.6 threshold;
//! * a *background word* is a uniform direction, nearly orthogonal to
//!   everything in high dimension.
//!
//! All embeddings are L2-normalized, so the dot product used at query time
//! equals cosine similarity (paper footnote 7).

use rand::Rng;

use crate::{Corpus, EmbedError, Embedding};

/// Configuration/builder for synthetic corpus generation.
///
/// # Example
///
/// ```
/// use gdsearch_embed::synthetic::SyntheticCorpus;
/// use rand::SeedableRng;
/// use rand::rngs::StdRng;
///
/// # fn main() -> Result<(), gdsearch_embed::EmbedError> {
/// let mut rng = StdRng::seed_from_u64(1);
/// let corpus = SyntheticCorpus::builder()
///     .vocab_size(500)
///     .dim(64)
///     .num_topics(20)
///     .generate(&mut rng)?;
/// assert_eq!(corpus.len(), 500);
/// assert_eq!(corpus.dim(), 64);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticCorpus {
    vocab_size: usize,
    dim: usize,
    num_topics: usize,
    topic_noise: f64,
    background_fraction: f64,
    anisotropy: f64,
}

impl SyntheticCorpus {
    /// Starts a builder with defaults: 10,000 words, 64 dimensions, 200
    /// topics, noise 0.5, 30% background words, no anisotropy.
    ///
    /// The defaults mirror the paper's vocabulary scale (tens of thousands
    /// of GloVe words) at a CI-friendly dimensionality; call
    /// [`dim`](Self::dim)`(300)` for the paper's exact setting and
    /// [`anisotropy`](Self::anisotropy)`(0.5)` for GloVe-like background
    /// similarity.
    pub fn builder() -> Self {
        SyntheticCorpus {
            vocab_size: 10_000,
            dim: 64,
            num_topics: 200,
            topic_noise: 0.5,
            background_fraction: 0.3,
            anisotropy: 0.0,
        }
    }

    /// Sets the vocabulary size (number of words).
    pub fn vocab_size(mut self, vocab_size: usize) -> Self {
        self.vocab_size = vocab_size;
        self
    }

    /// Sets the embedding dimensionality.
    pub fn dim(mut self, dim: usize) -> Self {
        self.dim = dim;
        self
    }

    /// Sets the number of topic clusters.
    pub fn num_topics(mut self, num_topics: usize) -> Self {
        self.num_topics = num_topics;
        self
    }

    /// Sets the within-topic noise σ: the expected L2 magnitude of the
    /// perturbation added to a word's topic center. Expected within-topic
    /// cosine is roughly `1 / (1 + σ²)`.
    pub fn topic_noise(mut self, noise: f64) -> Self {
        self.topic_noise = noise;
        self
    }

    /// Sets the fraction of words drawn as isotropic background (no topic).
    pub fn background_fraction(mut self, fraction: f64) -> Self {
        self.background_fraction = fraction;
        self
    }

    /// Sets the anisotropy strength γ: every word receives a shared bias
    /// component `γ · b` for one common direction `b`, so *any* two words
    /// have baseline cosine ≈ `γ² / (1 + γ²)`.
    ///
    /// Real word embeddings (GloVe included) are strongly anisotropic;
    /// this is the background noise that makes the paper's diffusion
    /// degrade as documents accumulate. `γ = 0.5` gives a GloVe-like
    /// baseline similarity of ≈ 0.2.
    pub fn anisotropy(mut self, gamma: f64) -> Self {
        self.anisotropy = gamma;
        self
    }

    /// Generates the corpus.
    ///
    /// # Errors
    ///
    /// Returns [`EmbedError::InvalidParameter`] if any of the parameters is
    /// out of domain (zero sizes, negative noise, fraction outside `[0, 1]`)
    /// and [`EmbedError::EmptyCorpus`] if `vocab_size` is zero.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<Corpus, EmbedError> {
        if self.vocab_size == 0 {
            return Err(EmbedError::EmptyCorpus);
        }
        if self.dim == 0 {
            return Err(EmbedError::invalid_parameter("dim must be positive"));
        }
        if self.num_topics == 0 {
            return Err(EmbedError::invalid_parameter("num_topics must be positive"));
        }
        if self.topic_noise < 0.0 || !self.topic_noise.is_finite() {
            return Err(EmbedError::invalid_parameter(
                "topic_noise must be non-negative and finite",
            ));
        }
        if !(0.0..=1.0).contains(&self.background_fraction) {
            return Err(EmbedError::invalid_parameter(
                "background_fraction must lie in [0, 1]",
            ));
        }
        if self.anisotropy < 0.0 || !self.anisotropy.is_finite() {
            return Err(EmbedError::invalid_parameter(
                "anisotropy must be non-negative and finite",
            ));
        }
        let centers: Vec<Embedding> = (0..self.num_topics)
            .map(|_| random_unit_vector(self.dim, rng))
            .collect();
        // The shared direction that makes the space anisotropic.
        let bias = random_unit_vector(self.dim, rng).scaled(self.anisotropy as f32);
        let mut words = Vec::with_capacity(self.vocab_size);
        for _ in 0..self.vocab_size {
            let is_background = rng.random_bool(self.background_fraction);
            // Per-component std σ/√dim makes the expected L2 norm of the
            // whole perturbation equal σ, independent of dimensionality, so
            // within-topic cosine stays ≈ 1/(1+σ²) at any `dim`.
            let per_component = self.topic_noise / (self.dim as f64).sqrt();
            let mut word = if is_background {
                random_unit_vector(self.dim, rng)
            } else {
                let center = &centers[rng.random_range(0..centers.len())];
                let mut w = center.clone();
                for x in w.as_mut_slice() {
                    *x += (per_component * standard_normal(rng)) as f32;
                }
                w
            };
            word.add_in_place(&bias).expect("bias shares the dimension");
            word.normalize_in_place();
            words.push(word);
        }
        Corpus::from_embeddings(words)
    }
}

/// Samples a uniform direction on the unit sphere `S^{dim-1}`.
pub fn random_unit_vector<R: Rng + ?Sized>(dim: usize, rng: &mut R) -> Embedding {
    loop {
        let mut v = Embedding::new((0..dim).map(|_| standard_normal(rng) as f32).collect());
        let n = v.norm();
        if n > 1e-6 {
            v.scale_in_place(1.0 / n);
            return v;
        }
        // Astronomically unlikely near-zero draw: resample.
    }
}

/// Standard normal sample via Box–Muller (keeps the dependency surface to
/// `rand` alone — no `rand_distr`).
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn generates_requested_shape() {
        let c = SyntheticCorpus::builder()
            .vocab_size(100)
            .dim(16)
            .num_topics(5)
            .generate(&mut rng(1))
            .unwrap();
        assert_eq!(c.len(), 100);
        assert_eq!(c.dim(), 16);
    }

    #[test]
    fn embeddings_are_unit_norm() {
        let c = SyntheticCorpus::builder()
            .vocab_size(50)
            .dim(32)
            .generate(&mut rng(2))
            .unwrap();
        for (_, e) in c.iter() {
            assert!((e.norm() - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn topic_structure_produces_close_neighbors() {
        let c = SyntheticCorpus::builder()
            .vocab_size(1000)
            .dim(64)
            .num_topics(20)
            .topic_noise(0.5)
            .background_fraction(0.2)
            .generate(&mut rng(3))
            .unwrap();
        // A sizeable fraction of words must have a neighbor above the
        // paper's 0.6 cosine threshold, otherwise query generation starves.
        let mut above = 0;
        for w in c.word_ids().take(200) {
            let (_, sim) = c.nearest_neighbor(w).unwrap();
            if sim >= 0.6 {
                above += 1;
            }
        }
        assert!(above > 100, "only {above}/200 words have a close neighbor");
    }

    #[test]
    fn background_words_are_nearly_orthogonal() {
        let mut r = rng(4);
        let a = random_unit_vector(128, &mut r);
        let b = random_unit_vector(128, &mut r);
        let sim = similarity::cosine(&a, &b).unwrap();
        assert!(
            sim.abs() < 0.4,
            "random directions should be near-orthogonal"
        );
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = rng(5);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn rejects_bad_parameters() {
        let mut r = rng(6);
        assert!(SyntheticCorpus::builder()
            .vocab_size(0)
            .generate(&mut r)
            .is_err());
        assert!(SyntheticCorpus::builder().dim(0).generate(&mut r).is_err());
        assert!(SyntheticCorpus::builder()
            .num_topics(0)
            .generate(&mut r)
            .is_err());
        assert!(SyntheticCorpus::builder()
            .topic_noise(-1.0)
            .generate(&mut r)
            .is_err());
        assert!(SyntheticCorpus::builder()
            .background_fraction(1.5)
            .generate(&mut r)
            .is_err());
        assert!(SyntheticCorpus::builder()
            .anisotropy(-0.5)
            .generate(&mut r)
            .is_err());
    }

    #[test]
    fn anisotropy_raises_baseline_similarity() {
        // With γ = 0.5 any two words share cosine ≈ γ²/(1+γ²) = 0.2 — the
        // GloVe-like background similarity that adds diffusion noise.
        let gen = |gamma: f64, seed: u64| {
            SyntheticCorpus::builder()
                .vocab_size(200)
                .dim(64)
                .anisotropy(gamma)
                .generate(&mut rng(seed))
                .unwrap()
        };
        let mean_cosine = |c: &crate::Corpus| {
            let mut total = 0.0;
            let mut count = 0;
            for i in 0..50u32 {
                for j in (i + 1)..50 {
                    total += similarity::cosine(
                        c.embedding(crate::WordId::new(i)),
                        c.embedding(crate::WordId::new(j)),
                    )
                    .unwrap() as f64;
                    count += 1;
                }
            }
            total / count as f64
        };
        let isotropic = mean_cosine(&gen(0.0, 7));
        let anisotropic = mean_cosine(&gen(0.5, 7));
        assert!(isotropic.abs() < 0.1, "isotropic baseline {isotropic}");
        assert!(
            anisotropic > 0.12 && anisotropic < 0.35,
            "anisotropic baseline {anisotropic} should be near 0.2"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let gen = SyntheticCorpus::builder().vocab_size(64).dim(8);
        let a = gen.generate(&mut rng(9)).unwrap();
        let b = gen.generate(&mut rng(9)).unwrap();
        assert_eq!(a, b);
    }
}
