use std::fmt;
use std::ops::{Add, AddAssign};

use serde::{Deserialize, Serialize};

use crate::EmbedError;

/// A dense `f32` embedding vector.
///
/// `Embedding` is the unit of content in the search scheme: every document
/// and query is one, and node *personalization vectors* are sums of them
/// (paper Eq. (3) relies on this linearity: the dot product of a query with
/// a sum of document embeddings equals the sum of per-document relevances).
///
/// # Example
///
/// ```
/// use gdsearch_embed::Embedding;
///
/// let mut sum = Embedding::zeros(3);
/// sum.add_in_place(&Embedding::new(vec![1.0, 0.0, 0.0])).unwrap();
/// sum.add_in_place(&Embedding::new(vec![0.0, 2.0, 0.0])).unwrap();
/// assert_eq!(sum.as_slice(), &[1.0, 2.0, 0.0]);
/// assert!((sum.norm() - 5.0f32.sqrt()).abs() < 1e-6);
/// ```
#[derive(Clone, PartialEq, Serialize, Deserialize, Default)]
#[serde(transparent)]
pub struct Embedding(Vec<f32>);

impl Embedding {
    /// Wraps a raw vector of components.
    pub fn new(components: Vec<f32>) -> Self {
        Embedding(components)
    }

    /// The zero vector of the given dimension.
    pub fn zeros(dim: usize) -> Self {
        Embedding(vec![0.0; dim])
    }

    /// A one-hot vector: `dim` components, 1.0 at `position`.
    ///
    /// # Panics
    ///
    /// Panics if `position >= dim`.
    pub fn one_hot(dim: usize, position: usize) -> Self {
        assert!(position < dim, "one-hot position out of range");
        let mut v = vec![0.0; dim];
        v[position] = 1.0;
        Embedding(v)
    }

    /// Dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.0.len()
    }

    /// Whether every component is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.0.iter().all(|&x| x == 0.0)
    }

    /// Components as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.0
    }

    /// Mutable components.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.0
    }

    /// Consumes the embedding, returning the raw component vector.
    pub fn into_inner(self) -> Vec<f32> {
        self.0
    }

    /// Euclidean (L2) norm.
    pub fn norm(&self) -> f32 {
        self.0.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Adds `other` into `self` componentwise.
    ///
    /// # Errors
    ///
    /// Returns [`EmbedError::DimensionMismatch`] if dimensions differ.
    pub fn add_in_place(&mut self, other: &Embedding) -> Result<(), EmbedError> {
        EmbedError::check_dims(self.dim(), other.dim())?;
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a += b;
        }
        Ok(())
    }

    /// Adds `scale * other` into `self` componentwise.
    ///
    /// # Errors
    ///
    /// Returns [`EmbedError::DimensionMismatch`] if dimensions differ.
    pub fn add_scaled_in_place(&mut self, other: &Embedding, scale: f32) -> Result<(), EmbedError> {
        EmbedError::check_dims(self.dim(), other.dim())?;
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a += scale * b;
        }
        Ok(())
    }

    /// Multiplies every component by `factor`.
    pub fn scale_in_place(&mut self, factor: f32) {
        for a in &mut self.0 {
            *a *= factor;
        }
    }

    /// Returns a copy scaled by `factor`.
    pub fn scaled(&self, factor: f32) -> Embedding {
        let mut out = self.clone();
        out.scale_in_place(factor);
        out
    }

    /// L2-normalizes in place. The zero vector is left unchanged.
    pub fn normalize_in_place(&mut self) {
        let n = self.norm();
        if n > 0.0 {
            self.scale_in_place(1.0 / n);
        }
    }

    /// Returns an L2-normalized copy. The zero vector is returned unchanged.
    pub fn normalized(&self) -> Embedding {
        let mut out = self.clone();
        out.normalize_in_place();
        out
    }

    /// Squared Euclidean distance to `other`.
    ///
    /// # Errors
    ///
    /// Returns [`EmbedError::DimensionMismatch`] if dimensions differ.
    pub fn squared_distance(&self, other: &Embedding) -> Result<f32, EmbedError> {
        EmbedError::check_dims(self.dim(), other.dim())?;
        Ok(self
            .0
            .iter()
            .zip(&other.0)
            .map(|(a, b)| (a - b) * (a - b))
            .sum())
    }

    /// Iterates over components.
    pub fn iter(&self) -> std::slice::Iter<'_, f32> {
        self.0.iter()
    }
}

impl fmt::Debug for Embedding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Long vectors are noise in logs; show dimension and a prefix.
        const SHOWN: usize = 4;
        write!(f, "Embedding(dim={}, [", self.dim())?;
        for (i, x) in self.0.iter().take(SHOWN).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{x:.3}")?;
        }
        if self.dim() > SHOWN {
            write!(f, ", …")?;
        }
        write!(f, "])")
    }
}

impl From<Vec<f32>> for Embedding {
    fn from(components: Vec<f32>) -> Self {
        Embedding(components)
    }
}

impl AsRef<[f32]> for Embedding {
    fn as_ref(&self) -> &[f32] {
        &self.0
    }
}

impl FromIterator<f32> for Embedding {
    fn from_iter<T: IntoIterator<Item = f32>>(iter: T) -> Self {
        Embedding(iter.into_iter().collect())
    }
}

impl Add<&Embedding> for Embedding {
    type Output = Embedding;

    /// Componentwise sum.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ; use [`Embedding::add_in_place`] for a
    /// fallible version.
    fn add(mut self, rhs: &Embedding) -> Embedding {
        self.add_in_place(rhs).expect("dimension mismatch in +");
        self
    }
}

impl AddAssign<&Embedding> for Embedding {
    /// Componentwise accumulation.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ; use [`Embedding::add_in_place`] for a
    /// fallible version.
    fn add_assign(&mut self, rhs: &Embedding) {
        self.add_in_place(rhs).expect("dimension mismatch in +=");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_one_hot() {
        let z = Embedding::zeros(4);
        assert_eq!(z.dim(), 4);
        assert!(z.is_zero());
        let h = Embedding::one_hot(4, 2);
        assert_eq!(h.as_slice(), &[0.0, 0.0, 1.0, 0.0]);
        assert!(!h.is_zero());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn one_hot_checks_position() {
        let _ = Embedding::one_hot(3, 3);
    }

    #[test]
    fn norm_and_normalize() {
        let v = Embedding::new(vec![3.0, 4.0]);
        assert!((v.norm() - 5.0).abs() < 1e-6);
        let n = v.normalized();
        assert!((n.norm() - 1.0).abs() < 1e-6);
        assert!((n.as_slice()[0] - 0.6).abs() < 1e-6);
    }

    #[test]
    fn normalize_zero_vector_is_noop() {
        let z = Embedding::zeros(3);
        assert_eq!(z.normalized(), z);
    }

    #[test]
    fn add_scaled() {
        let mut v = Embedding::new(vec![1.0, 1.0]);
        v.add_scaled_in_place(&Embedding::new(vec![2.0, -1.0]), 0.5)
            .unwrap();
        assert_eq!(v.as_slice(), &[2.0, 0.5]);
    }

    #[test]
    fn dimension_mismatch_is_error() {
        let mut a = Embedding::zeros(2);
        let b = Embedding::zeros(3);
        assert!(a.add_in_place(&b).is_err());
        assert!(a.squared_distance(&b).is_err());
    }

    #[test]
    fn squared_distance() {
        let a = Embedding::new(vec![0.0, 0.0]);
        let b = Embedding::new(vec![3.0, 4.0]);
        assert!((a.squared_distance(&b).unwrap() - 25.0).abs() < 1e-6);
    }

    #[test]
    fn operator_sugar() {
        let a = Embedding::new(vec![1.0, 2.0]);
        let b = Embedding::new(vec![3.0, 4.0]);
        let c = a + &b;
        assert_eq!(c.as_slice(), &[4.0, 6.0]);
        let mut d = c;
        d += &b;
        assert_eq!(d.as_slice(), &[7.0, 10.0]);
    }

    #[test]
    fn debug_is_truncated() {
        let v = Embedding::zeros(300);
        let s = format!("{v:?}");
        assert!(s.contains("dim=300"));
        assert!(s.contains('…'));
        assert!(s.len() < 80);
    }

    #[test]
    fn from_iterator_collects() {
        let v: Embedding = (0..3).map(|i| i as f32).collect();
        assert_eq!(v.as_slice(), &[0.0, 1.0, 2.0]);
    }

    #[test]
    fn scaled_returns_copy() {
        let v = Embedding::new(vec![1.0, -2.0]);
        let w = v.scaled(-2.0);
        assert_eq!(w.as_slice(), &[-2.0, 4.0]);
        assert_eq!(v.as_slice(), &[1.0, -2.0]);
    }
}
