//! Query and gold-document generation, following the paper's §V-B protocol:
//!
//! > "We first generate queries and documents from the Glove dataset using
//! > 1000 random words as queries and their nearest neighbors as gold
//! > documents, provided that their cosine similarity is over 0.6 and the
//! > two sets do not overlap. The remaining words are treated as a pool of
//! > irrelevant documents."
//!
//! [`generate`] reproduces that sampling over any [`Corpus`].

use std::collections::BTreeSet;

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{similarity, Corpus, EmbedError, WordId};

/// A query word paired with its gold document (its nearest neighbor in the
/// corpus, cosine ≥ the configured threshold).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueryGoldPair {
    /// The query word.
    pub query: WordId,
    /// The gold document: nearest neighbor of `query` outside the query set.
    pub gold: WordId,
    /// Cosine similarity between query and gold.
    pub cosine: f32,
}

/// Output of [`generate`]: query/gold pairs plus the irrelevant pool.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuerySet {
    pairs: Vec<QueryGoldPair>,
    irrelevant: Vec<WordId>,
}

impl QuerySet {
    /// The accepted query/gold pairs.
    pub fn pairs(&self) -> &[QueryGoldPair] {
        &self.pairs
    }

    /// Words that are neither queries nor gold documents; experiments draw
    /// the `M − 1` irrelevant documents from this pool.
    pub fn irrelevant(&self) -> &[WordId] {
        &self.irrelevant
    }

    /// Number of accepted pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether no pair was accepted.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Verifies the paper's disjointness invariant: no word is both a query
    /// and a gold document, and the irrelevant pool touches neither set.
    pub fn check_disjoint(&self) -> bool {
        let queries: BTreeSet<WordId> = self.pairs.iter().map(|p| p.query).collect();
        let golds: BTreeSet<WordId> = self.pairs.iter().map(|p| p.gold).collect();
        if queries.intersection(&golds).next().is_some() {
            return false;
        }
        self.irrelevant
            .iter()
            .all(|w| !queries.contains(w) && !golds.contains(w))
    }
}

/// Configuration for [`generate`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueryGenConfig {
    /// Number of query/gold pairs requested (the paper uses 1000).
    pub num_queries: usize,
    /// Minimum cosine similarity between a query and its nearest neighbor
    /// for the pair to be accepted (the paper uses 0.6).
    pub min_cosine: f32,
}

impl Default for QueryGenConfig {
    fn default() -> Self {
        QueryGenConfig {
            num_queries: 1000,
            min_cosine: 0.6,
        }
    }
}

/// Samples query/gold pairs from `corpus` per the paper's protocol.
///
/// Candidate query words are visited in random order. For each candidate,
/// its nearest neighbor among non-query words is computed; the pair is
/// accepted if the cosine similarity meets `config.min_cosine`. Accepted
/// queries and golds are kept disjoint (a gold is never later used as a
/// query and vice versa); distinct queries may share a gold document.
///
/// Fewer than `config.num_queries` pairs are returned when the corpus runs
/// out of qualifying words — check [`QuerySet::len`].
///
/// # Errors
///
/// Returns [`EmbedError::EmptyCorpus`] if the corpus has fewer than two
/// words and [`EmbedError::InvalidParameter`] for a non-finite threshold or
/// zero `num_queries`.
pub fn generate<R: Rng + ?Sized>(
    corpus: &Corpus,
    config: QueryGenConfig,
    rng: &mut R,
) -> Result<QuerySet, EmbedError> {
    if corpus.len() < 2 {
        return Err(EmbedError::EmptyCorpus);
    }
    if config.num_queries == 0 {
        return Err(EmbedError::invalid_parameter(
            "num_queries must be positive",
        ));
    }
    if !config.min_cosine.is_finite() {
        return Err(EmbedError::invalid_parameter("min_cosine must be finite"));
    }
    let mut order: Vec<WordId> = corpus.word_ids().collect();
    order.shuffle(rng);

    let mut queries: BTreeSet<WordId> = BTreeSet::new();
    let mut golds: BTreeSet<WordId> = BTreeSet::new();
    let mut pairs = Vec::with_capacity(config.num_queries);

    for &candidate in &order {
        if pairs.len() >= config.num_queries {
            break;
        }
        if queries.contains(&candidate) || golds.contains(&candidate) {
            continue;
        }
        let q_emb = corpus.embedding(candidate);
        // Nearest neighbor among words that are not queries and not the
        // candidate itself (golds stay eligible: queries may share a gold).
        let mut best: Option<(WordId, f32)> = None;
        for (id, e) in corpus.iter() {
            if id == candidate || queries.contains(&id) {
                continue;
            }
            let sim = similarity::cosine(q_emb, e)?;
            if best.map(|(_, s)| sim > s).unwrap_or(true) {
                best = Some((id, sim));
            }
        }
        if let Some((gold, cosine)) = best {
            if cosine >= config.min_cosine {
                queries.insert(candidate);
                golds.insert(gold);
                pairs.push(QueryGoldPair {
                    query: candidate,
                    gold,
                    cosine,
                });
            }
        }
    }

    let irrelevant: Vec<WordId> = corpus
        .word_ids()
        .filter(|w| !queries.contains(w) && !golds.contains(w))
        .collect();
    Ok(QuerySet { pairs, irrelevant })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SyntheticCorpus;
    use crate::Embedding;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn clustered_corpus(seed: u64) -> Corpus {
        SyntheticCorpus::builder()
            .vocab_size(600)
            .dim(48)
            .num_topics(15)
            .topic_noise(0.45)
            .background_fraction(0.2)
            .generate(&mut rng(seed))
            .unwrap()
    }

    #[test]
    fn generates_disjoint_pairs() {
        let corpus = clustered_corpus(1);
        let qs = generate(
            &corpus,
            QueryGenConfig {
                num_queries: 50,
                min_cosine: 0.6,
            },
            &mut rng(2),
        )
        .unwrap();
        assert!(!qs.is_empty());
        assert!(qs.check_disjoint());
        assert!(qs.len() <= 50);
    }

    #[test]
    fn gold_is_true_nearest_neighbor_above_threshold() {
        let corpus = clustered_corpus(3);
        let qs = generate(
            &corpus,
            QueryGenConfig {
                num_queries: 20,
                min_cosine: 0.6,
            },
            &mut rng(4),
        )
        .unwrap();
        for p in qs.pairs() {
            assert!(p.cosine >= 0.6, "pair below threshold: {p:?}");
            // No non-query word may be strictly closer than the gold.
            let queries: BTreeSet<_> = qs.pairs().iter().map(|p| p.query).collect();
            let q_emb = corpus.embedding(p.query);
            for (id, e) in corpus.iter() {
                if id == p.query || queries.contains(&id) {
                    continue;
                }
                let sim = similarity::cosine(q_emb, e).unwrap();
                assert!(
                    sim <= p.cosine + 1e-5,
                    "word {id} (sim {sim}) beats gold {} (sim {})",
                    p.gold,
                    p.cosine
                );
            }
        }
    }

    #[test]
    fn pool_plus_pairs_cover_corpus() {
        let corpus = clustered_corpus(5);
        let qs = generate(&corpus, QueryGenConfig::default(), &mut rng(6)).unwrap();
        let queries: BTreeSet<_> = qs.pairs().iter().map(|p| p.query).collect();
        let golds: BTreeSet<_> = qs.pairs().iter().map(|p| p.gold).collect();
        assert_eq!(
            queries.len() + golds.len() + qs.irrelevant().len(),
            corpus.len()
        );
    }

    #[test]
    fn impossible_threshold_yields_empty_set() {
        let corpus = clustered_corpus(7);
        let qs = generate(
            &corpus,
            QueryGenConfig {
                num_queries: 10,
                min_cosine: 1.1, // unreachable for distinct unit vectors
            },
            &mut rng(8),
        )
        .unwrap();
        assert!(qs.is_empty());
        assert_eq!(qs.irrelevant().len(), corpus.len());
    }

    #[test]
    fn orthogonal_corpus_yields_no_pairs() {
        // One-hot corpus: all similarities are 0.
        let corpus =
            Corpus::from_embeddings((0..8).map(|i| Embedding::one_hot(8, i)).collect::<Vec<_>>())
                .unwrap();
        let qs = generate(
            &corpus,
            QueryGenConfig {
                num_queries: 4,
                min_cosine: 0.6,
            },
            &mut rng(9),
        )
        .unwrap();
        assert!(qs.is_empty());
    }

    #[test]
    fn rejects_bad_inputs() {
        let corpus = clustered_corpus(10);
        assert!(generate(
            &corpus,
            QueryGenConfig {
                num_queries: 0,
                min_cosine: 0.6
            },
            &mut rng(1)
        )
        .is_err());
        assert!(generate(
            &corpus,
            QueryGenConfig {
                num_queries: 5,
                min_cosine: f32::NAN
            },
            &mut rng(1)
        )
        .is_err());
        let single = Corpus::from_embeddings(vec![Embedding::new(vec![1.0])]).unwrap();
        assert!(generate(&single, QueryGenConfig::default(), &mut rng(1)).is_err());
    }

    #[test]
    fn deterministic_under_seed() {
        let corpus = clustered_corpus(11);
        let cfg = QueryGenConfig {
            num_queries: 30,
            min_cosine: 0.6,
        };
        let a = generate(&corpus, cfg, &mut rng(12)).unwrap();
        let b = generate(&corpus, cfg, &mut rng(12)).unwrap();
        assert_eq!(a, b);
    }
}
