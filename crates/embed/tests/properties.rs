//! Property-based tests for the dense-retrieval substrate.

// Test code: the hit-id set answers membership queries only.
#![allow(clippy::disallowed_types)]

use gdsearch_embed::index::{BruteForceIndex, VectorIndex};
use gdsearch_embed::topk::TopK;
use gdsearch_embed::{similarity, Embedding, Similarity};
use proptest::prelude::*;

fn arb_vector(dim: usize) -> impl Strategy<Value = Embedding> {
    proptest::collection::vec(-10.0f32..10.0, dim).prop_map(Embedding::new)
}

proptest! {
    #[test]
    fn dot_is_bilinear(a in arb_vector(8), b in arb_vector(8), c in arb_vector(8), s in -5.0f32..5.0) {
        // <a + s·b, c> == <a, c> + s·<b, c>
        let mut left_vec = a.clone();
        left_vec.add_scaled_in_place(&b, s).unwrap();
        let left = similarity::dot(&left_vec, &c).unwrap();
        let right = similarity::dot(&a, &c).unwrap() + s * similarity::dot(&b, &c).unwrap();
        prop_assert!((left - right).abs() < 1e-2 * (1.0 + right.abs()),
            "left {left} right {right}");
    }

    #[test]
    fn dot_is_symmetric(a in arb_vector(8), b in arb_vector(8)) {
        let ab = similarity::dot(&a, &b).unwrap();
        let ba = similarity::dot(&b, &a).unwrap();
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn cosine_is_scale_invariant(a in arb_vector(6), b in arb_vector(6), s in 0.1f32..20.0) {
        prop_assume!(a.norm() > 1e-3 && b.norm() > 1e-3);
        let base = similarity::cosine(&a, &b).unwrap();
        let scaled = similarity::cosine(&a.scaled(s), &b).unwrap();
        prop_assert!((base - scaled).abs() < 1e-3);
    }

    #[test]
    fn cosine_bounded(a in arb_vector(6), b in arb_vector(6)) {
        let c = similarity::cosine(&a, &b).unwrap();
        prop_assert!((-1.0 - 1e-5..=1.0 + 1e-5).contains(&c));
    }

    #[test]
    fn normalization_preserves_direction(a in arb_vector(6)) {
        prop_assume!(a.norm() > 1e-3);
        let n = a.normalized();
        prop_assert!((n.norm() - 1.0).abs() < 1e-4);
        let c = similarity::cosine(&a, &n).unwrap();
        prop_assert!((c - 1.0).abs() < 1e-4);
    }

    #[test]
    fn euclidean_triangle_inequality(a in arb_vector(5), b in arb_vector(5), c in arb_vector(5)) {
        let ab = similarity::euclidean(&a, &b).unwrap();
        let bc = similarity::euclidean(&b, &c).unwrap();
        let ac = similarity::euclidean(&a, &c).unwrap();
        prop_assert!(ac <= ab + bc + 1e-3);
    }

    #[test]
    fn topk_matches_full_sort(scores in proptest::collection::vec(-100.0f32..100.0, 0..60), k in 1usize..10) {
        let mut top = TopK::new(k);
        for (i, &s) in scores.iter().enumerate() {
            top.push(s, i);
        }
        let got: Vec<usize> = top.into_sorted().into_iter().map(|s| s.item).collect();
        let mut expected: Vec<(f32, usize)> =
            scores.iter().copied().zip(0..).collect();
        expected.sort_by(|a, b| b.0.total_cmp(&a.0));
        expected.truncate(k);
        // Compare score sequences (ties may order differently by item).
        let got_scores: Vec<f32> = got.iter().map(|&i| scores[i]).collect();
        let expected_scores: Vec<f32> = expected.iter().map(|e| e.0).collect();
        prop_assert_eq!(got_scores, expected_scores);
    }

    #[test]
    fn brute_force_returns_true_top_k(
        vectors in proptest::collection::vec(proptest::collection::vec(-5.0f32..5.0, 4), 1..40),
        query in proptest::collection::vec(-5.0f32..5.0, 4),
        k in 1usize..8,
    ) {
        let items: Vec<Embedding> = vectors.iter().cloned().map(Embedding::new).collect();
        let q = Embedding::new(query);
        let index = BruteForceIndex::build(items.clone(), Similarity::Dot).unwrap();
        let hits = index.search(&q, k).unwrap();
        // Hits are sorted and no non-hit beats the worst hit.
        for w in hits.windows(2) {
            prop_assert!(w[0].score >= w[1].score);
        }
        if hits.len() == k.min(items.len()) && !hits.is_empty() {
            let worst = hits.last().unwrap().score;
            let hit_ids: std::collections::HashSet<usize> =
                hits.iter().map(|h| h.id).collect();
            for (i, item) in items.iter().enumerate() {
                if !hit_ids.contains(&i) {
                    let s = similarity::dot(&q, item).unwrap();
                    prop_assert!(s <= worst + 1e-4,
                        "missed item {i} with score {s} > worst hit {worst}");
                }
            }
        }
    }

    #[test]
    fn sum_aggregation_linearity(
        vectors in proptest::collection::vec(proptest::collection::vec(-5.0f32..5.0, 4), 1..20),
        query in proptest::collection::vec(-5.0f32..5.0, 4),
    ) {
        // Paper Eq. (3): dot(q, Σ d) == Σ dot(q, d).
        let q = Embedding::new(query);
        let mut sum = Embedding::zeros(4);
        let mut total = 0.0f32;
        for v in &vectors {
            let e = Embedding::new(v.clone());
            total += similarity::dot(&q, &e).unwrap();
            sum.add_in_place(&e).unwrap();
        }
        let combined = similarity::dot(&q, &sum).unwrap();
        prop_assert!((combined - total).abs() < 1e-2 * (1.0 + total.abs()));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Corpus and query generation are deterministic under a seeded RNG:
    /// the same seed reproduces the same embeddings and query pairs.
    #[test]
    fn generation_is_deterministic_per_seed(seed in 0u64..1000) {
        use gdsearch_embed::querygen::{self, QueryGenConfig};
        use gdsearch_embed::synthetic::SyntheticCorpus;
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let run = || {
            let mut rng = StdRng::seed_from_u64(seed);
            let corpus = SyntheticCorpus::builder()
                .vocab_size(80)
                .dim(8)
                .num_topics(5)
                .generate(&mut rng)
                .unwrap();
            let queries = querygen::generate(
                &corpus,
                QueryGenConfig { num_queries: 4, min_cosine: 0.3 },
                &mut rng,
            )
            .unwrap();
            (corpus.embeddings().to_vec(), queries.pairs().to_vec())
        };
        let (emb_a, pairs_a) = run();
        let (emb_b, pairs_b) = run();
        prop_assert_eq!(emb_a, emb_b, "embeddings must reproduce bit-for-bit");
        prop_assert_eq!(pairs_a, pairs_b, "query pairs must reproduce");
    }
}
