//! Property-based tests for the graph substrate.

use gdsearch_graph::algo::{bfs, components};
use gdsearch_graph::{generators, io, Graph, NodeId};
use proptest::prelude::*;

/// Strategy: a small simple graph described by node count and an arbitrary
/// edge set (self-loops filtered out).
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2u32..40).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..120).prop_map(move |pairs| {
            let edges = pairs.into_iter().filter(|(u, v)| u != v);
            Graph::from_edges(n, edges).expect("filtered edges are valid")
        })
    })
}

proptest! {
    #[test]
    fn handshake_lemma(g in arb_graph()) {
        let total: usize = g.node_ids().map(|u| g.degree(u)).sum();
        prop_assert_eq!(total, 2 * g.num_edges());
    }

    #[test]
    fn adjacency_sorted_and_unique(g in arb_graph()) {
        for u in g.node_ids() {
            let ns = g.neighbor_slice(u);
            for w in ns.windows(2) {
                prop_assert!(w[0] < w[1], "neighbors must be strictly ascending");
            }
        }
    }

    #[test]
    fn has_edge_is_symmetric(g in arb_graph()) {
        for (u, v) in g.edges() {
            prop_assert!(g.has_edge(u, v));
            prop_assert!(g.has_edge(v, u));
        }
    }

    #[test]
    fn bfs_distances_are_consistent(g in arb_graph()) {
        // Triangle inequality across an edge: distances of adjacent nodes
        // differ by at most 1.
        let d = bfs::distances(&g, NodeId::new(0));
        for (u, v) in g.edges() {
            if let (Some(du), Some(dv)) = (d[u.index()], d[v.index()]) {
                prop_assert!(du.abs_diff(dv) <= 1);
            } else {
                // If one endpoint is reachable the other must be too.
                prop_assert!(d[u.index()].is_none() && d[v.index()].is_none());
            }
        }
    }

    #[test]
    fn bfs_rings_match_distances(g in arb_graph()) {
        let src = NodeId::new(0);
        let d = bfs::distances(&g, src);
        let max = d.iter().flatten().copied().max().unwrap_or(0);
        let rings = bfs::distance_rings(&g, src, max);
        for (dist, ring) in rings.iter().enumerate() {
            for &u in ring {
                prop_assert_eq!(d[u.index()], Some(dist as u32));
            }
        }
        let total: usize = rings.iter().map(Vec::len).sum();
        let reachable = d.iter().filter(|x| x.is_some()).count();
        prop_assert_eq!(total, reachable);
    }

    #[test]
    fn shortest_path_length_equals_bfs_distance(g in arb_graph()) {
        let src = NodeId::new(0);
        let d = bfs::distances(&g, src);
        for t in g.node_ids() {
            match (bfs::shortest_path(&g, src, t), d[t.index()]) {
                (Some(path), Some(dist)) => {
                    prop_assert_eq!(path.len() as u32, dist + 1);
                    for w in path.windows(2) {
                        prop_assert!(g.has_edge(w[0], w[1]));
                    }
                }
                (None, None) => {}
                (p, dd) => prop_assert!(false, "path {:?} vs distance {:?}", p, dd),
            }
        }
    }

    #[test]
    fn components_agree_with_bfs(g in arb_graph()) {
        let comps = components::connected_components(&g);
        let d = bfs::distances(&g, NodeId::new(0));
        for u in g.node_ids() {
            let reachable = d[u.index()].is_some();
            let same = comps.same_component(NodeId::new(0), u);
            prop_assert_eq!(reachable, same);
        }
    }

    #[test]
    fn component_sizes_sum_to_node_count(g in arb_graph()) {
        let comps = components::connected_components(&g);
        let total: usize = comps.sizes().iter().sum();
        prop_assert_eq!(total, g.num_nodes());
    }

    #[test]
    fn edge_list_roundtrip(g in arb_graph()) {
        let mut buf = Vec::new();
        io::write_edge_list(&g, &mut buf).unwrap();
        let back = io::read_edge_list(buf.as_slice()).unwrap();
        // Node count can shrink if trailing nodes are isolated (ids are
        // inferred from max edge endpoint); edges must match exactly.
        let edges_a: Vec<_> = g.edges().collect();
        let edges_b: Vec<_> = back.edges().collect();
        prop_assert_eq!(edges_a, edges_b);
    }

    #[test]
    fn largest_component_is_connected(g in arb_graph()) {
        let (sub, map) = components::largest_component(&g);
        prop_assert!(generators::is_connected(&sub));
        prop_assert_eq!(sub.num_nodes(), map.len());
        // Every extracted edge exists in the original graph.
        for (u, v) in sub.edges() {
            prop_assert!(g.has_edge(map[u.index()], map[v.index()]));
        }
    }

    #[test]
    fn transition_matrices_are_stochastic(g in arb_graph()) {
        use gdsearch_graph::sparse::{transition_matrix, Normalization};
        let a = transition_matrix(&g, Normalization::ColumnStochastic);
        for (v, s) in a.col_sums().iter().enumerate() {
            if g.degree(NodeId::new(v as u32)) > 0 {
                prop_assert!((s - 1.0).abs() < 1e-4);
            } else {
                prop_assert_eq!(*s, 0.0);
            }
        }
        let a = transition_matrix(&g, Normalization::RowStochastic);
        for (u, s) in a.row_sums().iter().enumerate() {
            if g.degree(NodeId::new(u as u32)) > 0 {
                prop_assert!((s - 1.0).abs() < 1e-4);
            }
        }
    }
}

proptest! {
    /// Any shard count partitions an arbitrary graph into contiguous
    /// covering ranges whose accessors agree with the monolithic CSR, with
    /// halos that are exactly the sorted non-local endpoints.
    #[test]
    fn sharding_preserves_the_graph(g in arb_graph(), shards in 1usize..12) {
        use gdsearch_graph::ShardedGraph;

        let sg = ShardedGraph::from_graph(&g, shards).unwrap();
        prop_assert_eq!(sg.num_nodes(), g.num_nodes());
        prop_assert_eq!(sg.num_edges(), g.num_edges());
        prop_assert!(sg.num_shards() <= shards);
        let mut next = 0u32;
        for shard in sg.shards() {
            prop_assert_eq!(shard.start(), next);
            next = shard.end();
        }
        prop_assert_eq!(next as usize, g.num_nodes());
        for u in g.node_ids() {
            prop_assert_eq!(sg.degree(u), g.degree(u));
            prop_assert_eq!(sg.neighbor_slice(u), g.neighbor_slice(u));
            prop_assert!(sg.shard(sg.owner_of(u)).contains(u));
        }
        for shard in sg.shards() {
            let mut expected: Vec<NodeId> = (0..shard.num_local_nodes())
                .flat_map(|l| shard.local_neighbor_slice(l).iter().copied())
                .filter(|v| !shard.contains(*v))
                .collect();
            expected.sort_unstable();
            expected.dedup();
            prop_assert_eq!(shard.halo(), expected.as_slice());
            // The slot map is strictly monotone over local ∪ halo.
            let mut ids: Vec<NodeId> = shard.halo().to_vec();
            ids.extend((shard.start()..shard.end()).map(NodeId::new));
            ids.sort_unstable();
            for (slot, id) in ids.iter().enumerate() {
                prop_assert_eq!(shard.slot_of(*id), Some(slot));
            }
        }
    }
}
