use std::error::Error;
use std::fmt;

/// Errors produced while constructing or loading graphs.
///
/// All graph-construction entry points validate their inputs
/// (self-loops, out-of-range endpoints, malformed generator parameters)
/// and report failures through this type.
#[derive(Debug)]
#[non_exhaustive]
pub enum GraphError {
    /// An edge `(u, u)` was supplied; the substrate models simple graphs.
    SelfLoop {
        /// The offending node.
        node: u32,
    },
    /// An edge endpoint is `>= num_nodes`.
    NodeOutOfRange {
        /// The offending endpoint.
        node: u32,
        /// Number of nodes declared for the graph.
        num_nodes: u32,
    },
    /// A generator or algorithm parameter is outside its valid domain.
    InvalidParameter {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// An edge-list line could not be parsed.
    ParseEdgeList {
        /// 1-based line number in the input.
        line: usize,
        /// Offending line content (truncated).
        content: String,
    },
    /// An underlying I/O failure while reading or writing a graph file.
    Io(std::io::Error),
}

impl GraphError {
    pub(crate) fn invalid_parameter(reason: impl Into<String>) -> Self {
        GraphError::InvalidParameter {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::SelfLoop { node } => {
                write!(f, "self-loop on node {node} is not allowed")
            }
            GraphError::NodeOutOfRange { node, num_nodes } => {
                write!(
                    f,
                    "node {node} is out of range for a graph with {num_nodes} nodes"
                )
            }
            GraphError::InvalidParameter { reason } => {
                write!(f, "invalid parameter: {reason}")
            }
            GraphError::ParseEdgeList { line, content } => {
                write!(f, "malformed edge-list line {line}: {content:?}")
            }
            GraphError::Io(err) => write!(f, "i/o error: {err}"),
        }
    }
}

impl Error for GraphError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GraphError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(err: std::io::Error) -> Self {
        GraphError::Io(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = GraphError::SelfLoop { node: 3 };
        assert_eq!(e.to_string(), "self-loop on node 3 is not allowed");

        let e = GraphError::NodeOutOfRange {
            node: 9,
            num_nodes: 4,
        };
        assert!(e.to_string().contains("out of range"));

        let e = GraphError::invalid_parameter("p must lie in [0, 1]");
        assert!(e.to_string().contains("p must lie in [0, 1]"));
    }

    #[test]
    fn io_errors_expose_source() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e = GraphError::from(io);
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
