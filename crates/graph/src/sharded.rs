//! Node-range sharding of a [`Graph`] — the substrate for diffusion on
//! partitioned state.
//!
//! [`ShardedGraph::from_graph`] splits the node set `0..n` into `S`
//! contiguous ranges, chosen so the adjacency **bytes** (not the node
//! counts) balance across shards. Each [`GraphShard`] owns the CSR rows of
//! its range plus a compact **halo** index: the sorted, deduplicated set of
//! non-local endpoints referenced by its rows. Everything a shard needs for
//! one diffusion sweep is then its own rows, its own slice of the signal,
//! and the halo values gathered from the owning shards — exactly the
//! exchange pattern of a multi-machine deployment (PowerWalk-style
//! node-partitioned PPR), and the reason the sharded engines in the
//! diffusion crate exchange only halo columns between iterations.
//!
//! # Slot layout
//!
//! Shard-local dense vectors use the **slot** layout: the sorted union of
//! the halo and the local range. Because the local range is contiguous, the
//! union is simply `halo-below ++ local ++ halo-above`, and
//! [`GraphShard::slot_of`] is *strictly monotone in the global node id*.
//! That monotonicity is load-bearing: remapping a CSR row's columns into
//! slots preserves the row's storage order, so a shard-local sparse product
//! performs bit-for-bit the same float operations as the monolithic one —
//! the property the sharded diffusion engines' determinism rests on.
//!
//! # Example
//!
//! ```
//! use gdsearch_graph::{Graph, NodeId, ShardedGraph};
//!
//! # fn main() -> Result<(), gdsearch_graph::GraphError> {
//! let g = Graph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)])?;
//! let sharded = ShardedGraph::from_graph(&g, 2)?;
//! assert_eq!(sharded.num_shards(), 2);
//! assert_eq!(sharded.num_nodes(), 6);
//! // Graph-compatible accessors agree with the monolithic CSR.
//! assert_eq!(sharded.degree(NodeId::new(3)), g.degree(NodeId::new(3)));
//! assert_eq!(
//!     sharded.neighbor_slice(NodeId::new(3)),
//!     g.neighbor_slice(NodeId::new(3))
//! );
//! # Ok(())
//! # }
//! ```

use std::fmt;

use gdsearch_obs::Sink;

use crate::{Graph, GraphError, NodeId};

/// One contiguous node range of a [`ShardedGraph`], owning its CSR rows and
/// the halo index of cross-shard edges.
#[derive(Clone, PartialEq, Eq)]
pub struct GraphShard {
    /// First owned node id.
    start: u32,
    /// One past the last owned node id.
    end: u32,
    /// `offsets[local]..offsets[local + 1]` indexes `neighbors` for the
    /// local row `local` (global id `start + local`).
    offsets: Vec<usize>,
    /// Concatenated sorted adjacency lists of the owned rows, with *global*
    /// node ids.
    neighbors: Vec<NodeId>,
    /// Sorted, deduplicated non-local endpoints referenced by the owned
    /// rows. `halo[..halo_split]` are ids `< start`; `halo[halo_split..]`
    /// are ids `>= end`.
    halo: Vec<NodeId>,
    /// Number of leading halo entries below the local range.
    halo_split: usize,
    /// Directed adjacency entries `(u, v)` with local `u` and non-local `v`.
    cut_entries: usize,
}

impl GraphShard {
    /// First owned node id.
    #[inline]
    #[must_use]
    pub fn start(&self) -> u32 {
        self.start
    }

    /// One past the last owned node id.
    #[inline]
    #[must_use]
    pub fn end(&self) -> u32 {
        self.end
    }

    /// Number of owned nodes.
    #[inline]
    #[must_use]
    pub fn num_local_nodes(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// Whether this shard owns `u`.
    #[inline]
    #[must_use]
    pub fn contains(&self, u: NodeId) -> bool {
        (self.start..self.end).contains(&u.as_u32())
    }

    /// Local row index of an owned node.
    ///
    /// # Panics
    ///
    /// Panics if `u` is not owned by this shard.
    #[inline]
    #[must_use]
    pub fn local_index(&self, u: NodeId) -> usize {
        assert!(
            self.contains(u),
            "{u} not owned by shard {}..{}",
            self.start,
            self.end
        );
        (u.as_u32() - self.start) as usize
    }

    /// Global id of the local row `local`.
    ///
    /// # Panics
    ///
    /// Panics if `local >= num_local_nodes()`.
    #[inline]
    #[must_use]
    pub fn global_id(&self, local: usize) -> NodeId {
        assert!(local < self.num_local_nodes());
        NodeId::new(self.start + local as u32)
    }

    /// Degree of the local row `local`.
    ///
    /// # Panics
    ///
    /// Panics if `local >= num_local_nodes()`.
    #[inline]
    #[must_use]
    pub fn local_degree(&self, local: usize) -> usize {
        self.offsets[local + 1] - self.offsets[local]
    }

    /// Sorted neighbor list (global ids) of the local row `local`.
    ///
    /// # Panics
    ///
    /// Panics if `local >= num_local_nodes()`.
    #[inline]
    #[must_use]
    pub fn local_neighbor_slice(&self, local: usize) -> &[NodeId] {
        &self.neighbors[self.offsets[local]..self.offsets[local + 1]]
    }

    /// Sorted neighbor list of an owned node, by global id.
    ///
    /// # Panics
    ///
    /// Panics if `u` is not owned by this shard.
    #[inline]
    #[must_use]
    pub fn neighbor_slice(&self, u: NodeId) -> &[NodeId] {
        self.local_neighbor_slice(self.local_index(u))
    }

    /// The halo: sorted, deduplicated non-local endpoints referenced by
    /// this shard's rows.
    #[inline]
    #[must_use]
    pub fn halo(&self) -> &[NodeId] {
        &self.halo
    }

    /// Number of leading halo entries with ids below the local range (the
    /// rest lie above it).
    #[inline]
    #[must_use]
    pub fn halo_split(&self) -> usize {
        self.halo_split
    }

    /// Directed cross-shard adjacency entries in this shard's rows (each
    /// cut undirected edge contributes one entry per incident shard).
    #[inline]
    #[must_use]
    pub fn cut_entries(&self) -> usize {
        self.cut_entries
    }

    /// Stored adjacency entries (sum of local degrees).
    #[inline]
    #[must_use]
    pub fn num_adjacency_entries(&self) -> usize {
        self.neighbors.len()
    }

    /// Width of shard-local dense vectors in the slot layout:
    /// `halo length + local nodes`.
    #[inline]
    #[must_use]
    pub fn slot_count(&self) -> usize {
        self.halo.len() + self.num_local_nodes()
    }

    /// Slot of the local row `local`: `halo_split + local`.
    #[inline]
    #[must_use]
    pub fn local_slot(&self, local: usize) -> usize {
        self.halo_split + local
    }

    /// Slot of the `i`-th halo entry.
    ///
    /// # Panics
    ///
    /// Panics if `i >= halo().len()`.
    #[inline]
    #[must_use]
    pub fn halo_slot(&self, i: usize) -> usize {
        assert!(i < self.halo.len());
        if i < self.halo_split {
            i
        } else {
            self.num_local_nodes() + i
        }
    }

    /// Slot of an arbitrary node: `Some` for owned and halo nodes, `None`
    /// for nodes this shard never references.
    ///
    /// Strictly monotone in the global id over its domain (see the module
    /// docs for why that matters).
    #[must_use]
    pub fn slot_of(&self, u: NodeId) -> Option<usize> {
        if self.contains(u) {
            return Some(self.local_slot((u.as_u32() - self.start) as usize));
        }
        let i = self.halo.binary_search(&u).ok()?;
        Some(self.halo_slot(i))
    }

    /// Bytes held by this shard's CSR arrays (offsets + neighbors).
    #[must_use]
    pub fn adjacency_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<usize>()
            + self.neighbors.len() * std::mem::size_of::<NodeId>()
    }

    /// Bytes held by the halo index.
    #[must_use]
    pub fn halo_bytes(&self) -> usize {
        self.halo.len() * std::mem::size_of::<NodeId>()
    }
}

impl fmt::Debug for GraphShard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GraphShard")
            .field("range", &(self.start..self.end))
            .field("entries", &self.neighbors.len())
            .field("halo", &self.halo.len())
            .finish()
    }
}

/// A [`Graph`] partitioned into contiguous node ranges, each owned by one
/// [`GraphShard`].
///
/// Construct with [`ShardedGraph::from_graph`] (byte-balanced partitioner)
/// or [`ShardedGraph::from_boundaries`] (explicit ranges). Provides
/// `Graph`-compatible [`degree`](ShardedGraph::degree) /
/// [`neighbor_slice`](ShardedGraph::neighbor_slice) accessors that route
/// through the owning shard.
#[derive(Clone, PartialEq, Eq)]
pub struct ShardedGraph {
    num_nodes: usize,
    num_edges: usize,
    /// `boundaries[s]..boundaries[s + 1]` is shard `s`'s node range;
    /// `boundaries.len() == num_shards + 1`.
    boundaries: Vec<u32>,
    shards: Vec<GraphShard>,
}

impl ShardedGraph {
    /// Partitions `graph` into at most `shards` contiguous node ranges,
    /// balancing the adjacency bytes each shard stores.
    ///
    /// `shards` is clamped to the node count (every shard owns at least one
    /// node; a 3-node graph asked for 7 shards yields 3 single-node
    /// shards). The per-shard adjacency overshoot over the ideal
    /// `total_bytes / shards` is bounded by the largest single row, which
    /// is unsplittable under node-range partitioning.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidParameter`] if `shards == 0`.
    pub fn from_graph(graph: &Graph, shards: usize) -> Result<Self, GraphError> {
        if shards == 0 {
            return Err(GraphError::invalid_parameter(
                "shard count must be positive",
            ));
        }
        let n = graph.num_nodes();
        let shards = shards.min(n.max(1));
        let row_bytes = |u: u32| -> u64 {
            (std::mem::size_of::<usize>()
                + graph.degree(NodeId::new(u)) * std::mem::size_of::<NodeId>()) as u64
        };
        let total: u64 = (0..n as u32).map(row_bytes).sum();
        let mut boundaries = Vec::with_capacity(shards + 1);
        boundaries.push(0u32);
        let mut cum = 0u64;
        let mut next = 0u32;
        for s in 0..shards {
            if s + 1 == shards {
                boundaries.push(n as u32);
                break;
            }
            // Leave at least one row for each of the remaining shards.
            let max_end = (n - (shards - s - 1)) as u32;
            let target = total * (s as u64 + 1) / shards as u64;
            let start = next;
            while next < max_end && (cum < target || next == start) {
                cum += row_bytes(next);
                next += 1;
            }
            boundaries.push(next);
        }
        Self::from_boundaries(graph, &boundaries)
    }

    /// [`ShardedGraph::from_graph`] with deterministic build-cost
    /// instrumentation: after the partition is built, per-shard halo sizes,
    /// cut entries and slot counts are recorded into `sink` in ascending
    /// shard order. Recording is purely observational — the partition is
    /// bit-identical to the unobserved build.
    ///
    /// Metrics: `graph.sharded.shards` / `.halo_bytes` / `.cut_entries` /
    /// `.adjacency_bytes` (counters), `graph.sharded.shard_halo_entries` /
    /// `.shard_slots` (histograms, one sample per shard).
    ///
    /// # Errors
    ///
    /// As [`ShardedGraph::from_graph`].
    pub fn from_graph_observed(
        graph: &Graph,
        shards: usize,
        sink: &mut Sink<'_>,
    ) -> Result<Self, GraphError> {
        let sharded = Self::from_graph(graph, shards)?;
        sink.add("graph.sharded.shards", sharded.num_shards() as u64);
        for shard in sharded.shards() {
            sink.add("graph.sharded.halo_bytes", shard.halo_bytes() as u64);
            sink.add("graph.sharded.cut_entries", shard.cut_entries() as u64);
            sink.add(
                "graph.sharded.adjacency_bytes",
                shard.adjacency_bytes() as u64,
            );
            sink.record(
                "graph.sharded.shard_halo_entries",
                shard.halo().len() as u64,
            );
            sink.record("graph.sharded.shard_slots", shard.slot_count() as u64);
        }
        Ok(sharded)
    }

    /// Partitions `graph` along explicit boundaries: shard `s` owns
    /// `boundaries[s]..boundaries[s + 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidParameter`] unless `boundaries` starts
    /// at 0, ends at `num_nodes`, and is non-decreasing with at least two
    /// entries (empty shards are allowed only for the empty graph).
    pub fn from_boundaries(graph: &Graph, boundaries: &[u32]) -> Result<Self, GraphError> {
        let n = graph.num_nodes();
        let valid = boundaries.len() >= 2
            && boundaries[0] == 0
            && *boundaries.last().expect("len >= 2") == n as u32
            && boundaries.windows(2).all(|w| w[0] <= w[1])
            && (n == 0 || boundaries.windows(2).all(|w| w[0] < w[1]));
        if !valid {
            return Err(GraphError::invalid_parameter(format!(
                "shard boundaries {boundaries:?} must rise from 0 to {n} with non-empty ranges"
            )));
        }
        let shards = boundaries
            .windows(2)
            .map(|w| Self::build_shard(graph, w[0], w[1]))
            .collect();
        Ok(ShardedGraph {
            num_nodes: n,
            num_edges: graph.num_edges(),
            boundaries: boundaries.to_vec(),
            shards,
        })
    }

    fn build_shard(graph: &Graph, start: u32, end: u32) -> GraphShard {
        let local_n = (end - start) as usize;
        let mut offsets = Vec::with_capacity(local_n + 1);
        offsets.push(0usize);
        let mut neighbors = Vec::new();
        let mut halo: Vec<NodeId> = Vec::new();
        let mut cut_entries = 0usize;
        for u in start..end {
            let row = graph.neighbor_slice(NodeId::new(u));
            neighbors.extend_from_slice(row);
            offsets.push(neighbors.len());
            for &v in row {
                if !(start..end).contains(&v.as_u32()) {
                    cut_entries += 1;
                    halo.push(v);
                }
            }
        }
        halo.sort_unstable();
        halo.dedup();
        let halo_split = halo.partition_point(|h| h.as_u32() < start);
        GraphShard {
            start,
            end,
            offsets,
            neighbors,
            halo,
            halo_split,
            cut_entries,
        }
    }

    /// Number of nodes of the underlying graph.
    #[inline]
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of undirected edges of the underlying graph.
    #[inline]
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Number of shards.
    #[inline]
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shards, in ascending node-range order.
    #[inline]
    #[must_use]
    pub fn shards(&self) -> &[GraphShard] {
        &self.shards
    }

    /// Shard `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s >= num_shards()`.
    #[inline]
    #[must_use]
    pub fn shard(&self, s: usize) -> &GraphShard {
        &self.shards[s]
    }

    /// The shard boundaries: shard `s` owns
    /// `boundaries()[s]..boundaries()[s + 1]`.
    #[inline]
    #[must_use]
    pub fn boundaries(&self) -> &[u32] {
        &self.boundaries
    }

    /// Index of the shard owning `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[inline]
    #[must_use]
    pub fn owner_of(&self, u: NodeId) -> usize {
        assert!(u.index() < self.num_nodes, "{u} out of range");
        self.boundaries.partition_point(|&b| b <= u.as_u32()) - 1
    }

    /// Degree of `u`, routed through the owning shard — agrees with
    /// [`Graph::degree`].
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[inline]
    #[must_use]
    pub fn degree(&self, u: NodeId) -> usize {
        let shard = &self.shards[self.owner_of(u)];
        shard.local_degree((u.as_u32() - shard.start) as usize)
    }

    /// Sorted neighbor list of `u`, routed through the owning shard —
    /// agrees with [`Graph::neighbor_slice`].
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[inline]
    #[must_use]
    pub fn neighbor_slice(&self, u: NodeId) -> &[NodeId] {
        let shard = &self.shards[self.owner_of(u)];
        shard.local_neighbor_slice((u.as_u32() - shard.start) as usize)
    }

    /// Total adjacency bytes across all shards.
    #[must_use]
    pub fn total_adjacency_bytes(&self) -> usize {
        self.shards.iter().map(GraphShard::adjacency_bytes).sum()
    }

    /// The shards that own shard `s`'s halo nodes, ascending and
    /// deduplicated — exactly the shards `s` exchanges boundary data with
    /// during a diffusion sweep.
    ///
    /// The relation is symmetric for undirected graphs: if shard `t`'s
    /// rows reference a node owned by `s`, then that node has a neighbor
    /// inside `t`, so `s`'s rows reference a node owned by `t`. The peer
    /// sets therefore define an undirected shard-overlay topology (the
    /// links of a multi-machine deployment).
    ///
    /// # Panics
    ///
    /// Panics if `s >= num_shards()`.
    #[must_use]
    pub fn peers_of(&self, s: usize) -> Vec<usize> {
        let mut peers: Vec<usize> = self.shards[s]
            .halo()
            .iter()
            .map(|&h| self.owner_of(h))
            .collect();
        peers.dedup(); // halo is sorted, so owners come in ascending runs
        peers
    }
}

impl fmt::Debug for ShardedGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedGraph")
            .field("num_nodes", &self.num_nodes)
            .field("num_edges", &self.num_edges)
            .field("shards", &self.shards)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::SeedableRng;

    fn seeded(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn assert_partition_valid(g: &Graph, sg: &ShardedGraph) {
        // Ranges cover 0..n exactly, in order.
        let mut expected_start = 0u32;
        for shard in sg.shards() {
            assert_eq!(shard.start(), expected_start);
            expected_start = shard.end();
        }
        assert_eq!(expected_start as usize, g.num_nodes());
        // Accessors agree with the monolithic CSR for every node.
        for u in g.node_ids() {
            assert_eq!(sg.degree(u), g.degree(u), "degree of {u}");
            assert_eq!(sg.neighbor_slice(u), g.neighbor_slice(u), "row of {u}");
            let owner = sg.owner_of(u);
            assert!(sg.shard(owner).contains(u));
        }
        // Halo is exactly the set of non-local endpoints, sorted, split at
        // the local range.
        for shard in sg.shards() {
            let mut expected: Vec<NodeId> = (0..shard.num_local_nodes())
                .flat_map(|l| shard.local_neighbor_slice(l).iter().copied())
                .filter(|v| !shard.contains(*v))
                .collect();
            expected.sort_unstable();
            expected.dedup();
            assert_eq!(shard.halo(), expected.as_slice());
            assert!(shard.halo()[..shard.halo_split()]
                .iter()
                .all(|h| h.as_u32() < shard.start()));
            assert!(shard.halo()[shard.halo_split()..]
                .iter()
                .all(|h| h.as_u32() >= shard.end()));
        }
    }

    #[test]
    fn from_graph_partitions_ring() {
        let g = generators::ring(10).unwrap();
        for shards in [1, 2, 3, 7, 10] {
            let sg = ShardedGraph::from_graph(&g, shards).unwrap();
            assert_eq!(sg.num_shards(), shards);
            assert_partition_valid(&g, &sg);
        }
    }

    #[test]
    fn observed_build_is_identical_and_records_costs() {
        let g = generators::ring(12).unwrap();
        let reference = ShardedGraph::from_graph(&g, 4).unwrap();
        let mut registry = gdsearch_obs::MetricsRegistry::new();
        let sg = ShardedGraph::from_graph_observed(
            &g,
            4,
            &mut gdsearch_obs::Sink::attached(&mut registry),
        )
        .unwrap();
        assert_eq!(sg, reference, "instrumentation must not perturb the build");
        let counter = |name: &str| match registry.get(name) {
            Some(gdsearch_obs::MetricValue::Counter(c)) => *c,
            other => panic!("{name}: expected counter, got {other:?}"),
        };
        assert_eq!(counter("graph.sharded.shards"), 4);
        let expected_halo: usize = sg.shards().iter().map(GraphShard::halo_bytes).sum();
        assert_eq!(counter("graph.sharded.halo_bytes"), expected_halo as u64);
        let expected_cut: usize = sg.shards().iter().map(GraphShard::cut_entries).sum();
        assert_eq!(counter("graph.sharded.cut_entries"), expected_cut as u64);
        match registry.get("graph.sharded.shard_slots") {
            Some(gdsearch_obs::MetricValue::Histogram(h)) => {
                assert_eq!(h.count(), 4, "one slot sample per shard");
            }
            other => panic!("shard_slots: expected histogram, got {other:?}"),
        }
        // Disabled sinks record nothing and change nothing.
        let off =
            ShardedGraph::from_graph_observed(&g, 4, &mut gdsearch_obs::Sink::disabled()).unwrap();
        assert_eq!(off, reference);
    }

    #[test]
    fn shard_count_clamps_to_node_count() {
        let g = generators::ring(3).unwrap();
        let sg = ShardedGraph::from_graph(&g, 64).unwrap();
        assert_eq!(sg.num_shards(), 3);
        for shard in sg.shards() {
            assert_eq!(shard.num_local_nodes(), 1);
        }
        assert_partition_valid(&g, &sg);
    }

    #[test]
    fn zero_shards_rejected() {
        let g = generators::ring(4).unwrap();
        assert!(matches!(
            ShardedGraph::from_graph(&g, 0),
            Err(GraphError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn empty_graph_gets_one_empty_shard() {
        let g = Graph::empty(0);
        let sg = ShardedGraph::from_graph(&g, 4).unwrap();
        assert_eq!(sg.num_shards(), 1);
        assert_eq!(sg.shard(0).num_local_nodes(), 0);
        assert_eq!(sg.shard(0).slot_count(), 0);
    }

    #[test]
    fn explicit_uneven_boundaries() {
        let g = generators::grid(3, 3); // 9 nodes
        let sg = ShardedGraph::from_boundaries(&g, &[0, 1, 6, 9]).unwrap();
        assert_eq!(sg.num_shards(), 3);
        assert_eq!(sg.shard(0).num_local_nodes(), 1);
        assert_eq!(sg.shard(1).num_local_nodes(), 5);
        assert_partition_valid(&g, &sg);
    }

    #[test]
    fn invalid_boundaries_rejected() {
        let g = generators::ring(5).unwrap();
        for bad in [
            vec![],
            vec![0],
            vec![0u32, 3],    // does not reach n
            vec![1, 5],       // does not start at 0
            vec![0, 3, 2, 5], // decreasing
            vec![0, 3, 3, 5], // empty middle shard
        ] {
            assert!(
                ShardedGraph::from_boundaries(&g, &bad).is_err(),
                "{bad:?} accepted"
            );
        }
        assert!(ShardedGraph::from_boundaries(&g, &[0, 3, 5]).is_ok());
    }

    #[test]
    fn slot_map_is_monotone_and_complete() {
        let g = generators::social_circles_like_scaled(60, &mut seeded(5)).unwrap();
        let sg = ShardedGraph::from_graph(&g, 4).unwrap();
        for shard in sg.shards() {
            // Every local and halo node has a slot; slots are a bijection
            // onto 0..slot_count in ascending global-id order.
            let mut ids: Vec<NodeId> = shard.halo().to_vec();
            ids.extend((shard.start()..shard.end()).map(NodeId::new));
            ids.sort_unstable();
            for (expected_slot, id) in ids.iter().enumerate() {
                assert_eq!(shard.slot_of(*id), Some(expected_slot), "slot of {id}");
            }
            // Unreferenced foreign nodes have none.
            for u in g.node_ids() {
                if !shard.contains(u) && shard.halo().binary_search(&u).is_err() {
                    assert_eq!(shard.slot_of(u), None);
                }
            }
        }
    }

    #[test]
    fn cut_entries_count_cross_shard_adjacency() {
        let g = generators::ring(8).unwrap();
        let sg = ShardedGraph::from_boundaries(&g, &[0, 4, 8]).unwrap();
        // Ring cut at two places: each shard sees 2 cross edges.
        assert_eq!(sg.shard(0).cut_entries(), 2);
        assert_eq!(sg.shard(1).cut_entries(), 2);
        assert_eq!(sg.shard(0).halo(), &[NodeId::new(4), NodeId::new(7)]);
        assert_eq!(sg.shard(0).halo_split(), 0);
        assert_eq!(sg.shard(1).halo_split(), 2);
    }

    #[test]
    fn byte_balance_bounds_overshoot_by_max_row() {
        let g = generators::barabasi_albert(500, 3, &mut seeded(9)).unwrap();
        let total = {
            let sg1 = ShardedGraph::from_graph(&g, 1).unwrap();
            sg1.shard(0).adjacency_bytes()
        };
        let max_row_bytes = g
            .node_ids()
            .map(|u| std::mem::size_of::<usize>() + g.degree(u) * 4)
            .max()
            .unwrap();
        for shards in [2, 3, 7] {
            let sg = ShardedGraph::from_graph(&g, shards).unwrap();
            for shard in sg.shards() {
                assert!(
                    shard.adjacency_bytes() <= total / shards + max_row_bytes + 8,
                    "shard {:?} holds {} bytes, ideal {}",
                    shard,
                    shard.adjacency_bytes(),
                    total / shards
                );
            }
            assert_partition_valid(&g, &sg);
        }
    }

    #[test]
    fn peer_sets_are_symmetric_sorted_and_exact() {
        let g = generators::social_circles_like_scaled(80, &mut seeded(7)).unwrap();
        let sg = ShardedGraph::from_graph(&g, 5).unwrap();
        for s in 0..sg.num_shards() {
            let peers = sg.peers_of(s);
            assert!(peers.windows(2).all(|w| w[0] < w[1]), "unsorted/duplicated");
            assert!(!peers.contains(&s), "a shard is never its own peer");
            // Exact: t is a peer iff some halo node of s is owned by t.
            for t in 0..sg.num_shards() {
                let expected = sg.shard(s).halo().iter().any(|&h| sg.owner_of(h) == t);
                assert_eq!(peers.contains(&t), expected, "peer ({s}, {t})");
                // Symmetry.
                assert_eq!(peers.contains(&t), sg.peers_of(t).contains(&s));
            }
        }
        // A single shard has no peers.
        let sg1 = ShardedGraph::from_graph(&g, 1).unwrap();
        assert!(sg1.peers_of(0).is_empty());
    }

    #[test]
    fn memory_accessors_are_consistent() {
        let g = generators::grid(4, 4);
        let sg = ShardedGraph::from_graph(&g, 3).unwrap();
        for shard in sg.shards() {
            assert_eq!(
                shard.adjacency_bytes(),
                (shard.num_local_nodes() + 1) * 8 + shard.num_adjacency_entries() * 4
            );
            assert_eq!(shard.halo_bytes(), shard.halo().len() * 4);
        }
        assert_eq!(
            sg.total_adjacency_bytes(),
            sg.shards()
                .iter()
                .map(|s| s.adjacency_bytes())
                .sum::<usize>()
        );
    }
}
