//! Edge-list input and output.
//!
//! The format is the SNAP convention used by `facebook_combined.txt`: one
//! whitespace-separated `u v` pair per line, `#`-prefixed comment lines
//! ignored. Node ids must be dense (`0..n`); [`read_edge_list`] infers `n`
//! as `max id + 1`.
//!
//! Readers and writers are generic over [`std::io::Read`] /
//! [`std::io::Write`], so they accept files, buffers or in-memory strings —
//! pass `&mut reader` if you need to keep ownership.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::{Graph, GraphBuilder, GraphError};

/// Reads an undirected graph from a whitespace edge list.
///
/// Lines starting with `#` and blank lines are skipped. Duplicate edges are
/// collapsed.
///
/// # Errors
///
/// Returns [`GraphError::ParseEdgeList`] on malformed lines,
/// [`GraphError::SelfLoop`] on `u u` pairs and [`GraphError::Io`] on I/O
/// failures.
///
/// # Example
///
/// ```
/// use gdsearch_graph::io::read_edge_list;
///
/// # fn main() -> Result<(), gdsearch_graph::GraphError> {
/// let text = "# comment\n0 1\n1 2\n";
/// let g = read_edge_list(text.as_bytes())?;
/// assert_eq!(g.num_nodes(), 3);
/// assert_eq!(g.num_edges(), 2);
/// # Ok(())
/// # }
/// ```
pub fn read_edge_list<R: Read>(reader: R) -> Result<Graph, GraphError> {
    let buf = BufReader::new(reader);
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut max_node: u32 = 0;
    let mut any = false;
    for (lineno, line) in buf.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let parse = |tok: Option<&str>| -> Result<u32, GraphError> {
            tok.and_then(|t| t.parse::<u32>().ok())
                .ok_or(GraphError::ParseEdgeList {
                    line: lineno + 1,
                    content: truncate(trimmed),
                })
        };
        let u = parse(it.next())?;
        let v = parse(it.next())?;
        if it.next().is_some() {
            return Err(GraphError::ParseEdgeList {
                line: lineno + 1,
                content: truncate(trimmed),
            });
        }
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        max_node = max_node.max(u).max(v);
        any = true;
        edges.push((u, v));
    }
    let num_nodes = if any { max_node + 1 } else { 0 };
    let mut builder = GraphBuilder::new(num_nodes);
    for (u, v) in edges {
        builder.add_edge(u, v)?;
    }
    Ok(builder.build())
}

/// Reads an edge list from a file path. See [`read_edge_list`].
///
/// # Errors
///
/// As [`read_edge_list`], plus [`GraphError::Io`] if the file cannot be
/// opened.
pub fn read_edge_list_path<P: AsRef<Path>>(path: P) -> Result<Graph, GraphError> {
    let file = std::fs::File::open(path)?;
    read_edge_list(file)
}

/// Writes a graph as a whitespace edge list, one `u v` line per undirected
/// edge with `u < v`, preceded by a `#` header recording node/edge counts.
///
/// # Errors
///
/// Returns [`GraphError::Io`] on write failures.
pub fn write_edge_list<W: Write>(graph: &Graph, writer: W) -> Result<(), GraphError> {
    let mut out = BufWriter::new(writer);
    writeln!(
        out,
        "# gdsearch edge list: {} nodes, {} edges",
        graph.num_nodes(),
        graph.num_edges()
    )?;
    for (u, v) in graph.edges() {
        writeln!(out, "{} {}", u.as_u32(), v.as_u32())?;
    }
    out.flush()?;
    Ok(())
}

/// Writes a graph to a file path. See [`write_edge_list`].
///
/// # Errors
///
/// As [`write_edge_list`], plus [`GraphError::Io`] if the file cannot be
/// created.
pub fn write_edge_list_path<P: AsRef<Path>>(graph: &Graph, path: P) -> Result<(), GraphError> {
    let file = std::fs::File::create(path)?;
    write_edge_list(graph, file)
}

fn truncate(s: &str) -> String {
    const MAX: usize = 60;
    if s.len() <= MAX {
        s.to_string()
    } else {
        format!("{}…", &s[..MAX])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn read_simple_edge_list() {
        let g = read_edge_list("0 1\n1 2\n2 0\n".as_bytes()).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn read_skips_comments_and_blanks() {
        let g = read_edge_list("# header\n\n0 1\n   \n# more\n1 2\n".as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn read_accepts_tabs_and_extra_spaces() {
        let g = read_edge_list("0\t1\n 1   2 \n".as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn read_rejects_malformed_lines() {
        let err = read_edge_list("0 1\nhello\n".as_bytes()).unwrap_err();
        match err {
            GraphError::ParseEdgeList { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
        assert!(read_edge_list("0 1 2\n".as_bytes()).is_err());
        assert!(read_edge_list("0 -1\n".as_bytes()).is_err());
    }

    #[test]
    fn read_rejects_self_loop() {
        assert!(matches!(
            read_edge_list("3 3\n".as_bytes()),
            Err(GraphError::SelfLoop { node: 3 })
        ));
    }

    #[test]
    fn empty_input_is_empty_graph() {
        let g = read_edge_list("# nothing\n".as_bytes()).unwrap();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn duplicate_lines_collapse() {
        let g = read_edge_list("0 1\n1 0\n0 1\n".as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn write_then_read_roundtrip() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let g = generators::random_connected(40, 30, &mut rng).unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn path_roundtrip_through_tempfile() {
        let dir = std::env::temp_dir().join("gdsearch-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ring.edges");
        let g = generators::ring(12).unwrap();
        write_edge_list_path(&g, &path).unwrap();
        let back = read_edge_list_path(&path).unwrap();
        assert_eq!(g, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = read_edge_list_path("/definitely/not/here.edges").unwrap_err();
        assert!(matches!(err, GraphError::Io(_)));
    }
}
