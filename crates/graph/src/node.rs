use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a node (peer) in a [`Graph`](crate::Graph).
///
/// `NodeId` is a zero-based dense index: a graph with `n` nodes uses ids
/// `0..n`. The newtype prevents accidentally mixing node ids with other
/// integer quantities such as hop counts or document ids.
///
/// # Example
///
/// ```
/// use gdsearch_graph::NodeId;
///
/// let u = NodeId::new(7);
/// assert_eq!(u.index(), 7);
/// assert_eq!(u.to_string(), "n7");
/// assert!(u < NodeId::new(8));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a raw index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// Returns the raw index as a `usize`, suitable for slice indexing.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw index as a `u32`.
    #[inline]
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(index: u32) -> Self {
        NodeId(index)
    }
}

impl From<NodeId> for u32 {
    fn from(id: NodeId) -> Self {
        id.0
    }
}

impl From<NodeId> for usize {
    fn from(id: NodeId) -> Self {
        id.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_u32() {
        let id = NodeId::from(42u32);
        assert_eq!(u32::from(id), 42);
        assert_eq!(id.index(), 42usize);
        assert_eq!(id.as_u32(), 42);
    }

    #[test]
    fn display_is_prefixed() {
        assert_eq!(NodeId::new(0).to_string(), "n0");
        assert_eq!(NodeId::new(4038).to_string(), "n4038");
    }

    #[test]
    fn ordering_follows_index() {
        let mut ids = vec![NodeId::new(3), NodeId::new(1), NodeId::new(2)];
        ids.sort();
        assert_eq!(ids, vec![NodeId::new(1), NodeId::new(2), NodeId::new(3)]);
    }

    #[test]
    fn node_id_is_send_sync_copy() {
        fn assert_send_sync<T: Send + Sync + Copy>() {}
        assert_send_sync::<NodeId>();
    }
}
