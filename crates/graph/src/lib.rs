//! Graph substrate for the `gdsearch` decentralized-search stack.
//!
//! This crate provides everything the diffusion-based search scheme of
//! Giatsoglou et al. (ICDCS 2022) needs from its underlying peer-to-peer
//! topology:
//!
//! * [`Graph`] — a compact, immutable, undirected graph in CSR form, built
//!   through [`GraphBuilder`];
//! * [`generators`] — random-graph families (Erdős–Rényi, Watts–Strogatz,
//!   Barabási–Albert, Holme–Kim, stochastic block model) and deterministic
//!   topologies, including [`generators::social_circles_like`], a calibrated
//!   stand-in for the SNAP Facebook social-circles graph used in the paper;
//! * [`algo`] — BFS distances and distance rings (the evaluation samples
//!   querying nodes per ring), connected components, clustering coefficients
//!   and degree statistics;
//! * [`sparse`] — a minimal CSR `f32` sparse matrix and the normalized
//!   transition matrices that drive Personalized PageRank diffusion;
//! * [`sharded`] — the node-range partitioned view of a graph
//!   ([`ShardedGraph`]): per-shard CSR rows plus halo indexes of
//!   cross-shard edges, the substrate for diffusion on partitioned state;
//! * [`io`] — whitespace edge-list reading/writing compatible with the SNAP
//!   `facebook_combined.txt` format.
//!
//! # Example
//!
//! ```
//! use gdsearch_graph::{Graph, NodeId};
//! use gdsearch_graph::algo::bfs;
//!
//! # fn main() -> Result<(), gdsearch_graph::GraphError> {
//! let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])?;
//! assert_eq!(g.num_nodes(), 4);
//! assert_eq!(g.num_edges(), 4);
//! assert_eq!(g.degree(NodeId::new(0)), 2);
//!
//! let dist = bfs::distances(&g, NodeId::new(0));
//! assert_eq!(dist[2], Some(2));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algo;
mod error;
pub mod generators;
mod graph;
pub mod io;
mod node;
pub mod sharded;
pub mod sparse;

pub use error::GraphError;
pub use graph::{Graph, GraphBuilder, Neighbors};
pub use node::NodeId;
pub use sharded::{GraphShard, ShardedGraph};
