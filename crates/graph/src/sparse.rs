//! Minimal `f32` CSR sparse matrix and graph transition matrices.
//!
//! Personalized PageRank diffusion iterates `E(t) = (1−a) A E(t−1) + a E(0)`
//! where `A` is a normalized adjacency (transition) matrix. This module
//! provides the CSR representation and the three standard normalizations.

use serde::{Deserialize, Serialize};

use crate::{Graph, GraphError, NodeId};

/// How the adjacency matrix of an undirected graph is normalized into a
/// transition matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Normalization {
    /// `A = W D^{-1}` — column-stochastic. Entry `(u, v)` is `1/deg(v)`:
    /// random-walk mass flows from `v` to a uniformly chosen neighbor. This
    /// is the Markov-chain reading of the paper's Eq. (5) and the default.
    #[default]
    ColumnStochastic,
    /// `A = D^{-1} W` — row-stochastic. Each node averages its neighbors'
    /// values (neighborhood smoothing).
    RowStochastic,
    /// `A = D^{-1/2} W D^{-1/2}` — symmetric normalization, the usual choice
    /// in graph-convolution literature.
    Symmetric,
}

/// Compressed sparse row matrix with `f32` values.
///
/// Supports the two products the diffusion engines need: matrix × vector and
/// matrix × row-major dense matrix.
///
/// # Example
///
/// ```
/// use gdsearch_graph::sparse::CsrMatrix;
///
/// // [[0, 2], [1, 0]]
/// let m = CsrMatrix::from_triplets(2, 2, &[(0, 1, 2.0), (1, 0, 1.0)]).unwrap();
/// let y = m.mul_vec(&[3.0, 4.0]);
/// assert_eq!(y, vec![8.0, 3.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CsrMatrix {
    n_rows: usize,
    n_cols: usize,
    offsets: Vec<usize>,
    columns: Vec<u32>,
    values: Vec<f32>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from `(row, col, value)` triplets. Triplets may
    /// arrive in any order; duplicates are summed.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidParameter`] if an index is out of range
    /// or either dimension exceeds the `u32` index space (row and column
    /// indices are stored as `u32`; larger matrices must be sharded — see
    /// [`crate::sharded`]).
    pub fn from_triplets(
        n_rows: usize,
        n_cols: usize,
        triplets: &[(u32, u32, f32)],
    ) -> Result<Self, GraphError> {
        if n_rows > u32::MAX as usize || n_cols > u32::MAX as usize {
            return Err(GraphError::invalid_parameter(format!(
                "matrix dimensions {n_rows}x{n_cols} exceed the u32 index space \
                 of the CSR column storage"
            )));
        }
        for &(r, c, _) in triplets {
            if r as usize >= n_rows || c as usize >= n_cols {
                return Err(GraphError::invalid_parameter(format!(
                    "triplet ({r}, {c}) out of range for {n_rows}x{n_cols} matrix"
                )));
            }
        }
        let mut sorted: Vec<(u32, u32, f32)> = triplets.to_vec();
        sorted.sort_by_key(|&(r, c, _)| (r, c));
        // Merge duplicates of the same (row, col) by summing their values.
        let mut merged: Vec<(u32, u32, f32)> = Vec::with_capacity(sorted.len());
        for (r, c, v) in sorted {
            match merged.last_mut() {
                Some(last) if last.0 == r && last.1 == c => last.2 += v,
                _ => merged.push((r, c, v)),
            }
        }
        let mut offsets = vec![0usize; n_rows + 1];
        for &(r, _, _) in &merged {
            offsets[r as usize + 1] += 1;
        }
        for i in 1..=n_rows {
            offsets[i] += offsets[i - 1];
        }
        let columns: Vec<u32> = merged.iter().map(|&(_, c, _)| c).collect();
        let values: Vec<f32> = merged.iter().map(|&(_, _, v)| v).collect();
        Ok(CsrMatrix {
            n_rows,
            n_cols,
            offsets,
            columns,
            values,
        })
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of stored (structurally nonzero) entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Iterates over the stored entries of `row` as `(column, value)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `row >= n_rows`.
    pub fn row(&self, row: usize) -> impl Iterator<Item = (u32, f32)> + '_ {
        let range = self.offsets[row]..self.offsets[row + 1];
        self.columns[range.clone()]
            .iter()
            .copied()
            .zip(self.values[range].iter().copied())
    }

    /// Dense matrix-vector product `y = M x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != n_cols`.
    pub fn mul_vec(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.n_cols, "dimension mismatch");
        let mut y = vec![0.0f32; self.n_rows];
        self.mul_vec_into(x, &mut y);
        y
    }

    /// In-place matrix-vector product `y = M x`, reusing the output buffer.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != n_cols` or `y.len() != n_rows`.
    pub fn mul_vec_into(&self, x: &[f32], y: &mut [f32]) {
        assert_eq!(x.len(), self.n_cols, "input dimension mismatch");
        assert_eq!(y.len(), self.n_rows, "output dimension mismatch");
        for (r, out) in y.iter_mut().enumerate() {
            let mut acc = 0.0f32;
            for i in self.offsets[r]..self.offsets[r + 1] {
                acc += self.values[i] * x[self.columns[i] as usize];
            }
            *out = acc;
        }
    }

    /// Product with a row-major dense matrix: `Y = M X`, where `X` has
    /// `n_cols` rows of width `width` stored contiguously, likewise `Y`.
    ///
    /// This is the hot loop of dense diffusion (`X` holds one embedding row
    /// per node).
    ///
    /// # Panics
    ///
    /// Panics if buffer sizes disagree with `n_cols * width` /
    /// `n_rows * width`.
    pub fn mul_dense_into(&self, x: &[f32], width: usize, y: &mut [f32]) {
        assert_eq!(y.len(), self.n_rows * width, "output dimension mismatch");
        self.mul_dense_rows_into(0, x, width, y);
    }

    /// Partial product `Y[first_row..] = (M X)[first_row..]`: computes only
    /// the output rows covered by `y`, which holds
    /// `y.len() / width` consecutive rows starting at `first_row`.
    ///
    /// Each output row depends only on `x` and that row's stored entries,
    /// so disjoint row ranges can be computed concurrently into disjoint
    /// buffers and the assembled result is bitwise identical to one
    /// [`CsrMatrix::mul_dense_into`] call — the primitive behind the
    /// parallel dense diffusion sweeps.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != n_cols * width`, `y.len()` is not a multiple
    /// of `width`, or the row range extends past `n_rows`.
    pub fn mul_dense_rows_into(&self, first_row: usize, x: &[f32], width: usize, y: &mut [f32]) {
        assert_eq!(x.len(), self.n_cols * width, "input dimension mismatch");
        let w = width.max(1);
        assert_eq!(y.len() % w, 0, "output buffer must hold whole rows");
        let rows = y.len() / w;
        assert!(
            first_row + rows <= self.n_rows,
            "row range {first_row}..{} exceeds {} rows",
            first_row + rows,
            self.n_rows
        );
        for (chunk_row, out) in y.chunks_mut(w).enumerate() {
            let r = first_row + chunk_row;
            out.fill(0.0);
            for i in self.offsets[r]..self.offsets[r + 1] {
                let weight = self.values[i];
                let src = &x[self.columns[i] as usize * width..][..width];
                for (o, s) in out.iter_mut().zip(src) {
                    *o += weight * s;
                }
            }
        }
    }

    /// Sum of each row's values (useful to verify stochasticity).
    pub fn row_sums(&self) -> Vec<f32> {
        (0..self.n_rows)
            .map(|r| self.row(r).map(|(_, v)| v).sum())
            .collect()
    }

    /// Sum of each column's values.
    pub fn col_sums(&self) -> Vec<f32> {
        let mut sums = vec![0.0f32; self.n_cols];
        for r in 0..self.n_rows {
            for (c, v) in self.row(r) {
                sums[c as usize] += v;
            }
        }
        sums
    }
}

/// Builds the normalized transition matrix of an undirected graph.
///
/// Isolated nodes produce empty rows/columns: their diffusion state is pure
/// teleport, which is the correct decentralized semantics (no neighbors to
/// exchange with).
///
/// # Example
///
/// ```
/// use gdsearch_graph::{generators, sparse};
///
/// let g = generators::path(3);
/// let a = sparse::transition_matrix(&g, sparse::Normalization::ColumnStochastic);
/// // Every column of a column-stochastic matrix sums to 1.
/// for s in a.col_sums() {
///     assert!((s - 1.0).abs() < 1e-6);
/// }
/// ```
pub fn transition_matrix(g: &Graph, norm: Normalization) -> CsrMatrix {
    let n = g.num_nodes();
    let mut triplets = Vec::with_capacity(2 * g.num_edges());
    for u in g.node_ids() {
        for v in g.neighbors(u) {
            let value = match norm {
                Normalization::ColumnStochastic => 1.0 / g.degree(v) as f32,
                Normalization::RowStochastic => 1.0 / g.degree(u) as f32,
                Normalization::Symmetric => {
                    1.0 / ((g.degree(u) as f32).sqrt() * (g.degree(v) as f32).sqrt())
                }
            };
            triplets.push((u.as_u32(), v.as_u32(), value));
        }
    }
    CsrMatrix::from_triplets(n, n, &triplets).expect("graph indices are in range")
}

/// Convenience accessor: the transition weight `A[u][v]` for neighbors
/// `u, v` under `norm`, as used by decentralized per-node updates.
///
/// Returns 0 if `u` and `v` are not adjacent.
///
/// # Panics
///
/// Panics if either node is out of range.
pub fn transition_weight(g: &Graph, norm: Normalization, u: NodeId, v: NodeId) -> f32 {
    if !g.has_edge(u, v) {
        return 0.0;
    }
    match norm {
        Normalization::ColumnStochastic => 1.0 / g.degree(v) as f32,
        Normalization::RowStochastic => 1.0 / g.degree(u) as f32,
        Normalization::Symmetric => {
            1.0 / ((g.degree(u) as f32).sqrt() * (g.degree(v) as f32).sqrt())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn from_triplets_sorts_rows() {
        let m = CsrMatrix::from_triplets(2, 3, &[(1, 2, 5.0), (0, 0, 1.0), (1, 0, 2.0)]).unwrap();
        assert_eq!(m.nnz(), 3);
        let row1: Vec<_> = m.row(1).collect();
        assert_eq!(row1, vec![(0, 2.0), (2, 5.0)]);
    }

    #[test]
    fn from_triplets_merges_duplicates() {
        let m = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0), (0, 1, 2.5), (1, 0, 4.0)]).unwrap();
        assert_eq!(m.nnz(), 2);
        let row0: Vec<_> = m.row(0).collect();
        assert_eq!(row0, vec![(1, 3.5)]);
    }

    #[test]
    fn from_triplets_rejects_out_of_range() {
        assert!(CsrMatrix::from_triplets(2, 2, &[(2, 0, 1.0)]).is_err());
        assert!(CsrMatrix::from_triplets(2, 2, &[(0, 2, 1.0)]).is_err());
    }

    #[test]
    fn from_triplets_rejects_dimensions_beyond_u32() {
        // Columns are stored as u32: dimensions past that index space used
        // to truncate silently instead of erroring.
        let too_big = u32::MAX as usize + 1;
        assert!(matches!(
            CsrMatrix::from_triplets(2, too_big, &[]),
            Err(GraphError::InvalidParameter { .. })
        ));
        assert!(matches!(
            CsrMatrix::from_triplets(too_big, 2, &[]),
            Err(GraphError::InvalidParameter { .. })
        ));
        assert!(CsrMatrix::from_triplets(2, u32::MAX as usize, &[]).is_ok());
    }

    #[test]
    fn mul_vec_matches_dense() {
        // [[1, 0, 2], [0, 3, 0]]
        let m = CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0)]).unwrap();
        assert_eq!(m.mul_vec(&[1.0, 1.0, 1.0]), vec![3.0, 3.0]);
        assert_eq!(m.mul_vec(&[0.0, 2.0, 5.0]), vec![10.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mul_vec_checks_dims() {
        let m = CsrMatrix::from_triplets(2, 3, &[]).unwrap();
        let _ = m.mul_vec(&[1.0, 2.0]);
    }

    #[test]
    fn mul_dense_is_columnwise_mul_vec() {
        let g = generators::ring(5).unwrap();
        let a = transition_matrix(&g, Normalization::ColumnStochastic);
        let width = 3;
        let x: Vec<f32> = (0..5 * width).map(|i| (i as f32).sin()).collect();
        let mut y = vec![0.0f32; 5 * width];
        a.mul_dense_into(&x, width, &mut y);
        for c in 0..width {
            let col: Vec<f32> = (0..5).map(|r| x[r * width + c]).collect();
            let expect = a.mul_vec(&col);
            for r in 0..5 {
                assert!((y[r * width + c] - expect[r]).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn mul_dense_rows_assembles_to_full_product() {
        let g = generators::social_circles_like_scaled(40, &mut seeded(7)).unwrap();
        let a = transition_matrix(&g, Normalization::ColumnStochastic);
        let width = 4;
        let x: Vec<f32> = (0..40 * width).map(|i| (i as f32 * 0.13).cos()).collect();
        let mut full = vec![0.0f32; 40 * width];
        a.mul_dense_into(&x, width, &mut full);
        // Compute the same product in uneven row ranges; must be bitwise
        // identical to the monolithic call.
        let mut pieced = vec![0.0f32; 40 * width];
        let mut row = 0;
        for rows in [1usize, 7, 12, 20] {
            let chunk = &mut pieced[row * width..(row + rows) * width];
            a.mul_dense_rows_into(row, &x, width, chunk);
            row += rows;
        }
        assert_eq!(full, pieced);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn mul_dense_rows_checks_range() {
        let m = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0)]).unwrap();
        let x = [1.0f32, 2.0];
        let mut y = [0.0f32; 4];
        m.mul_dense_rows_into(1, &x, 1, &mut y[..2]);
    }

    #[test]
    fn column_stochastic_columns_sum_to_one() {
        let g = generators::social_circles_like_scaled(100, &mut seeded(1)).unwrap();
        let a = transition_matrix(&g, Normalization::ColumnStochastic);
        for (v, s) in a.col_sums().iter().enumerate() {
            if g.degree(NodeId::new(v as u32)) > 0 {
                assert!((s - 1.0).abs() < 1e-4, "column {v} sums to {s}");
            }
        }
    }

    #[test]
    fn row_stochastic_rows_sum_to_one() {
        let g = generators::grid(4, 4);
        let a = transition_matrix(&g, Normalization::RowStochastic);
        for (u, s) in a.row_sums().iter().enumerate() {
            if g.degree(NodeId::new(u as u32)) > 0 {
                assert!((s - 1.0).abs() < 1e-5, "row {u} sums to {s}");
            }
        }
    }

    #[test]
    fn symmetric_normalization_is_symmetric() {
        let g = generators::star(5);
        let a = transition_matrix(&g, Normalization::Symmetric);
        for u in 0..5usize {
            for (c, v) in a.row(u) {
                let back: f32 = a
                    .row(c as usize)
                    .find(|&(cc, _)| cc as usize == u)
                    .map(|(_, vv)| vv)
                    .unwrap();
                assert!((v - back).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn isolated_nodes_have_empty_rows() {
        let g = crate::Graph::from_edges(3, [(0, 1)]).unwrap();
        let a = transition_matrix(&g, Normalization::ColumnStochastic);
        assert_eq!(a.row(2).count(), 0);
    }

    #[test]
    fn transition_weight_matches_matrix() {
        let g = generators::grid(3, 3);
        for norm in [
            Normalization::ColumnStochastic,
            Normalization::RowStochastic,
            Normalization::Symmetric,
        ] {
            let a = transition_matrix(&g, norm);
            for u in g.node_ids() {
                for v in g.neighbors(u) {
                    let from_matrix = a
                        .row(u.index())
                        .find(|&(c, _)| c == v.as_u32())
                        .map(|(_, w)| w)
                        .unwrap();
                    let direct = transition_weight(&g, norm, u, v);
                    assert!((from_matrix - direct).abs() < 1e-6);
                }
            }
        }
        assert_eq!(
            transition_weight(
                &g,
                Normalization::ColumnStochastic,
                NodeId::new(0),
                NodeId::new(8)
            ),
            0.0
        );
    }

    fn seeded(seed: u64) -> rand::rngs::StdRng {
        use rand::SeedableRng;
        rand::rngs::StdRng::seed_from_u64(seed)
    }
}
