//! Random and deterministic graph generators.
//!
//! The evaluation in the reproduced paper runs on the SNAP Facebook
//! social-circles graph (4,039 nodes, 88,234 edges, mean degree ≈ 43.7,
//! high clustering). That dataset is not redistributable here, so
//! [`social_circles_like`] provides a calibrated synthetic stand-in based on
//! the relaxed-caveman community model (dense 45-node circles on a sparse
//! inter-circle skeleton, reproducing the dataset's clustering *and* its
//! long graph distances); the real file can still be loaded through
//! [`crate::io::read_edge_list`].
//!
//! All generators take a caller-provided RNG so experiments are reproducible
//! end to end from a single seed.
//!
//! # Example
//!
//! ```
//! use gdsearch_graph::generators;
//! use rand::SeedableRng;
//! use rand::rngs::StdRng;
//!
//! # fn main() -> Result<(), gdsearch_graph::GraphError> {
//! let mut rng = StdRng::seed_from_u64(7);
//! let g = generators::barabasi_albert(100, 3, &mut rng)?;
//! assert_eq!(g.num_nodes(), 100);
//! // Preferential attachment adds m edges per new node.
//! assert!(g.num_edges() >= 3 * (100 - 4));
//! # Ok(())
//! # }
//! ```

use rand::Rng;

use crate::{Graph, GraphBuilder, GraphError, NodeId};

/// Number of nodes of the SNAP Facebook social-circles graph.
pub const FACEBOOK_NODES: u32 = 4_039;
/// Number of edges of the SNAP Facebook social-circles graph.
pub const FACEBOOK_EDGES: usize = 88_234;
/// Attachment parameter for Holme–Kim stand-ins so that the mean degree
/// (`2m`) matches the Facebook graph's mean degree of ≈ 43.7.
pub const FACEBOOK_ATTACHMENT: u32 = 22;
/// Circle (community) size used by [`social_circles_like`]: a 45-node
/// near-clique has internal degree ≈ 42, matching the dataset's mean
/// degree of 43.7.
pub const FACEBOOK_CIRCLE_SIZE: u32 = 45;

/// Erdős–Rényi `G(n, p)` random graph.
///
/// Uses geometric edge skipping, so generation costs `O(n + E)` rather than
/// `O(n^2)` for sparse graphs.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `p` is not in `[0, 1]` or is
/// not finite.
pub fn erdos_renyi<R: Rng + ?Sized>(n: u32, p: f64, rng: &mut R) -> Result<Graph, GraphError> {
    check_probability(p, "p")?;
    let mut builder = GraphBuilder::new(n);
    if n >= 2 && p > 0.0 {
        let total_pairs = n as u64 * (n as u64 - 1) / 2;
        for pair in sample_bernoulli_indexes(total_pairs, p, rng) {
            let (u, v) = pair_from_index(pair);
            builder.add_edge(u, v)?;
        }
    }
    Ok(builder.build())
}

/// Watts–Strogatz small-world graph: a ring lattice where every node connects
/// to its `k/2` nearest neighbors on each side, with each edge rewired to a
/// uniformly random endpoint with probability `beta`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `k` is odd, `k >= n`, or
/// `beta` is outside `[0, 1]`.
pub fn watts_strogatz<R: Rng + ?Sized>(
    n: u32,
    k: u32,
    beta: f64,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    check_probability(beta, "beta")?;
    if !k.is_multiple_of(2) {
        return Err(GraphError::invalid_parameter("k must be even"));
    }
    if k >= n {
        return Err(GraphError::invalid_parameter("k must be smaller than n"));
    }
    let mut builder = GraphBuilder::new(n);
    for u in 0..n {
        for offset in 1..=(k / 2) {
            let v = (u + offset) % n;
            if rng.random_bool(beta) {
                // Rewire the far endpoint to a uniform target that is neither
                // `u` nor already adjacent; give up after a bounded number of
                // attempts (dense corners) and keep the lattice edge instead.
                let mut rewired = false;
                for _ in 0..32 {
                    let w = rng.random_range(0..n);
                    if w != u && !builder.has_edge(u, w) {
                        builder.add_edge(u, w)?;
                        rewired = true;
                        break;
                    }
                }
                if !rewired && !builder.has_edge(u, v) && u != v {
                    builder.add_edge(u, v)?;
                }
            } else {
                builder.add_edge(u, v)?;
            }
        }
    }
    Ok(builder.build())
}

/// Barabási–Albert preferential-attachment graph.
///
/// Starts from a complete graph on `m + 1` seed nodes; each subsequent node
/// attaches to `m` distinct existing nodes sampled with probability
/// proportional to their degree.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `m == 0` or `n <= m`.
pub fn barabasi_albert<R: Rng + ?Sized>(n: u32, m: u32, rng: &mut R) -> Result<Graph, GraphError> {
    preferential_attachment(n, m, 0.0, rng)
}

/// Holme–Kim powerlaw-cluster graph: Barabási–Albert growth where, after each
/// preferential-attachment step, a *triad-formation* step follows with
/// probability `p_triad`, linking the new node to a random neighbor of the
/// node it just attached to. This preserves the heavy-tailed degree
/// distribution of BA while adding the high clustering characteristic of
/// social graphs.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `m == 0`, `n <= m` or
/// `p_triad` is outside `[0, 1]`.
pub fn holme_kim<R: Rng + ?Sized>(
    n: u32,
    m: u32,
    p_triad: f64,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    check_probability(p_triad, "p_triad")?;
    preferential_attachment(n, m, p_triad, rng)
}

fn preferential_attachment<R: Rng + ?Sized>(
    n: u32,
    m: u32,
    p_triad: f64,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    if m == 0 {
        return Err(GraphError::invalid_parameter("m must be positive"));
    }
    if n <= m {
        return Err(GraphError::invalid_parameter("n must exceed m"));
    }
    let seed = (m + 1).min(n);
    let mut builder = GraphBuilder::new(n);
    // `repeated` holds every edge endpoint once, so uniform sampling from it
    // is degree-proportional sampling.
    let mut repeated: Vec<u32> = Vec::new();
    let mut adjacency: Vec<Vec<u32>> = vec![Vec::new(); n as usize];
    let connect = |builder: &mut GraphBuilder,
                   repeated: &mut Vec<u32>,
                   adjacency: &mut Vec<Vec<u32>>,
                   u: u32,
                   v: u32|
     -> Result<(), GraphError> {
        builder.add_edge(u, v)?;
        repeated.push(u);
        repeated.push(v);
        adjacency[u as usize].push(v);
        adjacency[v as usize].push(u);
        Ok(())
    };
    for u in 0..seed {
        for v in (u + 1)..seed {
            connect(&mut builder, &mut repeated, &mut adjacency, u, v)?;
        }
    }
    for u in seed..n {
        let mut chosen: Vec<u32> = Vec::with_capacity(m as usize);
        let mut last_target: Option<u32> = None;
        while chosen.len() < m as usize {
            let triad_candidate = last_target.and_then(|t| {
                let peers = &adjacency[t as usize];
                if peers.is_empty() {
                    None
                } else {
                    Some(peers[rng.random_range(0..peers.len())])
                }
            });
            let target = match triad_candidate {
                Some(w)
                    if !chosen.is_empty()
                        && rng.random_bool(p_triad)
                        && w != u
                        && !builder.has_edge(u, w) =>
                {
                    w
                }
                _ => {
                    // Preferential attachment with rejection of duplicates.
                    let mut t = repeated[rng.random_range(0..repeated.len())];
                    let mut attempts = 0;
                    while (t == u || builder.has_edge(u, t)) && attempts < 64 {
                        t = repeated[rng.random_range(0..repeated.len())];
                        attempts += 1;
                    }
                    if t == u || builder.has_edge(u, t) {
                        // Dense fallback: pick the smallest non-adjacent node.
                        match (0..u).find(|&w| !builder.has_edge(u, w)) {
                            Some(w) => w,
                            None => break, // u is adjacent to all predecessors
                        }
                    } else {
                        t
                    }
                }
            };
            connect(&mut builder, &mut repeated, &mut adjacency, u, target)?;
            chosen.push(target);
            last_target = Some(target);
        }
    }
    Ok(builder.build())
}

/// Stochastic block model: nodes are partitioned into blocks of the given
/// sizes; an edge appears with probability `p_in` inside a block and `p_out`
/// across blocks.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if any probability is outside
/// `[0, 1]` or `block_sizes` is empty.
pub fn stochastic_block_model<R: Rng + ?Sized>(
    block_sizes: &[u32],
    p_in: f64,
    p_out: f64,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    check_probability(p_in, "p_in")?;
    check_probability(p_out, "p_out")?;
    if block_sizes.is_empty() {
        return Err(GraphError::invalid_parameter(
            "block_sizes must not be empty",
        ));
    }
    let n: u32 = block_sizes.iter().sum();
    let mut starts = Vec::with_capacity(block_sizes.len());
    let mut acc = 0u32;
    for &s in block_sizes {
        starts.push(acc);
        acc += s;
    }
    let mut builder = GraphBuilder::new(n);
    for (bi, &si) in block_sizes.iter().enumerate() {
        // Within-block pairs.
        if si >= 2 && p_in > 0.0 {
            let pairs = si as u64 * (si as u64 - 1) / 2;
            for pair in sample_bernoulli_indexes(pairs, p_in, rng) {
                let (u, v) = pair_from_index(pair);
                builder.add_edge(starts[bi] + u, starts[bi] + v)?;
            }
        }
        // Cross-block rectangles (only towards later blocks).
        for (bj, &sj) in block_sizes.iter().enumerate().skip(bi + 1) {
            if p_out > 0.0 && si > 0 && sj > 0 {
                let cells = si as u64 * sj as u64;
                for cell in sample_bernoulli_indexes(cells, p_out, rng) {
                    let u = (cell / sj as u64) as u32;
                    let v = (cell % sj as u64) as u32;
                    builder.add_edge(starts[bi] + u, starts[bj] + v)?;
                }
            }
        }
    }
    Ok(builder.build())
}

/// Relaxed-caveman community graph: `n` nodes are partitioned into
/// communities of (at most) `community_size`; each community is an
/// Erdős–Rényi near-clique with edge probability `intra_p`; consecutive
/// communities are connected by a ring edge (guaranteeing connectivity) and
/// each community adds `bridges` extra uniform inter-community edges.
///
/// This is the classic model of *social-circles* topology: very high
/// clustering inside circles, and graph distances that grow along the
/// sparse inter-community skeleton — which is what gives the Facebook
/// social-circles dataset its diameter of 8 despite a mean degree of 43.7.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `n == 0`,
/// `community_size < 2` or `intra_p` is outside `[0, 1]`.
pub fn relaxed_caveman<R: Rng + ?Sized>(
    n: u32,
    community_size: u32,
    intra_p: f64,
    bridges: u32,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    check_probability(intra_p, "intra_p")?;
    if n == 0 {
        return Err(GraphError::invalid_parameter("n must be positive"));
    }
    if community_size < 2 {
        return Err(GraphError::invalid_parameter(
            "community_size must be at least 2",
        ));
    }
    let mut builder = GraphBuilder::new(n);
    // Community c covers ids [c*community_size, min((c+1)*community_size, n)).
    let num_communities = n.div_ceil(community_size);
    let bounds = |c: u32| -> (u32, u32) {
        let start = c * community_size;
        (start, ((c + 1) * community_size).min(n))
    };
    for c in 0..num_communities {
        let (start, end) = bounds(c);
        let size = (end - start) as u64;
        // Dense intra-community edges.
        if size >= 2 && intra_p > 0.0 {
            let pairs = size * (size - 1) / 2;
            for pair in sample_bernoulli_indexes(pairs, intra_p, rng) {
                let (u, v) = pair_from_index(pair);
                builder.add_edge(start + u, start + v)?;
            }
        }
        // Ring edge to the next community (connectivity backbone).
        if num_communities > 1 {
            let (nstart, nend) = bounds((c + 1) % num_communities);
            let u = rng.random_range(start..end);
            let v = rng.random_range(nstart..nend);
            if u != v {
                builder.add_edge(u, v)?;
            }
        }
        // Long-range bridges.
        for _ in 0..bridges {
            if n <= end - start {
                break; // single community: nowhere else to bridge
            }
            let u = rng.random_range(start..end);
            for _ in 0..32 {
                let v = rng.random_range(0..n);
                if !(start..end).contains(&v) && v != u && !builder.has_edge(u, v) {
                    builder.add_edge(u, v)?;
                    break;
                }
            }
        }
    }
    Ok(builder.build())
}

/// Calibrated stand-in for the SNAP Facebook social-circles graph used in
/// the paper's evaluation: a [`relaxed_caveman`] graph with 4,039 nodes in
/// 45-node circles (mean degree ≈ 42 vs. 43.7 in the dataset), very high
/// clustering (≈ 0.9 vs. 0.61), and a sparse inter-circle skeleton that
/// reproduces the dataset's long graph distances (diameter 8, mean path
/// ≈ 4) — the property the paper's accuracy-vs-distance evaluation sweeps
/// over. See `DESIGN.md` for the substitution rationale; the real
/// `facebook_combined.txt` can be loaded with
/// [`crate::io::read_edge_list_path`] instead.
pub fn social_circles_like<R: Rng + ?Sized>(rng: &mut R) -> Result<Graph, GraphError> {
    relaxed_caveman(FACEBOOK_NODES, FACEBOOK_CIRCLE_SIZE, 0.95, 4, rng)
}

/// Scaled variant of [`social_circles_like`] with `n` nodes, keeping the
/// Facebook-like circle size (mean degree ≈ 42) and clustering. Small `n`
/// shrinks the circle size so at least three circles exist.
///
/// Useful for quick experiments and CI-sized tests.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `n < 6`.
pub fn social_circles_like_scaled<R: Rng + ?Sized>(
    n: u32,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    let circle = FACEBOOK_CIRCLE_SIZE.min(n / 3).max(2);
    relaxed_caveman(n, circle, 0.95, 4, rng)
}

/// Path graph `0 - 1 - … - (n-1)`.
pub fn path(n: u32) -> Graph {
    let mut b = GraphBuilder::new(n);
    for u in 1..n {
        b.add_edge(u - 1, u).expect("consecutive ids are valid");
    }
    b.build()
}

/// Cycle graph on `n >= 3` nodes.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `n < 3`.
pub fn ring(n: u32) -> Result<Graph, GraphError> {
    if n < 3 {
        return Err(GraphError::invalid_parameter("a ring needs n >= 3"));
    }
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        b.add_edge(u, (u + 1) % n)?;
    }
    Ok(b.build())
}

/// Complete graph on `n` nodes.
pub fn complete(n: u32) -> Graph {
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            b.add_edge(u, v).expect("distinct in-range ids");
        }
    }
    b.build()
}

/// Star graph: node 0 connected to nodes `1..n`.
pub fn star(n: u32) -> Graph {
    let mut b = GraphBuilder::new(n);
    for u in 1..n {
        b.add_edge(0, u).expect("distinct in-range ids");
    }
    b.build()
}

/// Two-dimensional grid with `rows × cols` nodes; node `(r, c)` has index
/// `r * cols + c`.
pub fn grid(rows: u32, cols: u32) -> Graph {
    let n = rows * cols;
    let mut b = GraphBuilder::new(n);
    for r in 0..rows {
        for c in 0..cols {
            let u = r * cols + c;
            if c + 1 < cols {
                b.add_edge(u, u + 1).expect("in-range");
            }
            if r + 1 < rows {
                b.add_edge(u, u + cols).expect("in-range");
            }
        }
    }
    b.build()
}

/// Complete `arity`-ary tree of the given `depth` (depth 0 = single root).
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `arity == 0`.
pub fn balanced_tree(arity: u32, depth: u32) -> Result<Graph, GraphError> {
    if arity == 0 {
        return Err(GraphError::invalid_parameter("arity must be positive"));
    }
    // Node count: 1 + a + a^2 + … + a^depth.
    let mut count: u64 = 0;
    let mut level: u64 = 1;
    for _ in 0..=depth {
        count += level;
        level *= arity as u64;
    }
    let n = u32::try_from(count)
        .map_err(|_| GraphError::invalid_parameter("tree too large for u32 node ids"))?;
    let mut b = GraphBuilder::new(n);
    for u in 1..n {
        let parent = (u - 1) / arity;
        b.add_edge(parent, u)?;
    }
    Ok(b.build())
}

/// Uniformly random spanning-tree-plus-extra-edges connected graph: builds a
/// random recursive tree on `n` nodes then adds `extra` uniform random edges.
///
/// Guaranteed connected; handy for simulator tests that need arbitrary
/// connected topologies.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `n == 0`.
pub fn random_connected<R: Rng + ?Sized>(
    n: u32,
    extra: u32,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    if n == 0 {
        return Err(GraphError::invalid_parameter("n must be positive"));
    }
    let mut b = GraphBuilder::new(n);
    for u in 1..n {
        let parent = rng.random_range(0..u);
        b.add_edge(parent, u)?;
    }
    let mut added = 0;
    let mut attempts = 0;
    while added < extra && attempts < 50 * extra as u64 + 100 {
        attempts += 1;
        if n < 2 {
            break;
        }
        let u = rng.random_range(0..n);
        let v = rng.random_range(0..n);
        if u != v && !b.has_edge(u, v) {
            b.add_edge(u, v)?;
            added += 1;
        }
    }
    Ok(b.build())
}

/// Samples the indexes of successes of `count` independent Bernoulli(`p`)
/// trials using geometric skipping, in `O(successes)` expected time.
fn sample_bernoulli_indexes<R: Rng + ?Sized>(count: u64, p: f64, rng: &mut R) -> Vec<u64> {
    let mut out = Vec::new();
    if p <= 0.0 || count == 0 {
        return out;
    }
    if p >= 1.0 {
        out.extend(0..count);
        return out;
    }
    let log_q = (1.0 - p).ln();
    let mut i: i64 = -1;
    loop {
        let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        let skip = (u.ln() / log_q).floor() as i64;
        i = i.saturating_add(1).saturating_add(skip);
        if i < 0 || i as u64 >= count {
            break;
        }
        out.push(i as u64);
    }
    out
}

/// Maps a linear index over the strictly-lower-triangular pair space to the
/// pair `(u, v)` with `u < v`. Pair `k` enumerates `(0,1), (0,2), (1,2),
/// (0,3), …` i.e. column-major over `v`.
fn pair_from_index(k: u64) -> (u32, u32) {
    // Find v such that v(v-1)/2 <= k < v(v+1)/2.
    let v = ((1.0 + 8.0 * k as f64).sqrt() as u64).div_ceil(2);
    let v = if v * (v - 1) / 2 > k { v - 1 } else { v };
    let u = k - v * (v - 1) / 2;
    (u as u32, v as u32)
}

fn check_probability(p: f64, name: &str) -> Result<(), GraphError> {
    if !(0.0..=1.0).contains(&p) || p.is_nan() {
        return Err(GraphError::invalid_parameter(format!(
            "{name} must lie in [0, 1], got {p}"
        )));
    }
    Ok(())
}

/// Convenience: returns `true` if every node is reachable from node 0
/// (vacuously true for the empty graph).
pub fn is_connected(g: &Graph) -> bool {
    if g.num_nodes() == 0 {
        return true;
    }
    crate::algo::bfs::distances(g, NodeId::new(0))
        .iter()
        .all(|d| d.is_some())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn pair_from_index_enumerates_lower_triangle() {
        let expected = [(0, 1), (0, 2), (1, 2), (0, 3), (1, 3), (2, 3), (0, 4)];
        for (k, &(u, v)) in expected.iter().enumerate() {
            assert_eq!(pair_from_index(k as u64), (u, v), "k={k}");
        }
    }

    #[test]
    fn erdos_renyi_p_zero_is_empty() {
        let g = erdos_renyi(50, 0.0, &mut rng(1)).unwrap();
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn erdos_renyi_p_one_is_complete() {
        let g = erdos_renyi(20, 1.0, &mut rng(1)).unwrap();
        assert_eq!(g.num_edges(), 20 * 19 / 2);
    }

    #[test]
    fn erdos_renyi_edge_count_near_expectation() {
        let n = 400u32;
        let p = 0.05;
        let g = erdos_renyi(n, p, &mut rng(42)).unwrap();
        let expected = p * (n as f64) * (n as f64 - 1.0) / 2.0;
        let got = g.num_edges() as f64;
        // 5 standard deviations of the binomial.
        let sd = (expected * (1.0 - p)).sqrt();
        assert!(
            (got - expected).abs() < 5.0 * sd,
            "expected ≈ {expected}, got {got}"
        );
    }

    #[test]
    fn erdos_renyi_rejects_bad_p() {
        assert!(erdos_renyi(10, -0.1, &mut rng(1)).is_err());
        assert!(erdos_renyi(10, 1.5, &mut rng(1)).is_err());
        assert!(erdos_renyi(10, f64::NAN, &mut rng(1)).is_err());
    }

    #[test]
    fn watts_strogatz_beta_zero_is_lattice() {
        let g = watts_strogatz(20, 4, 0.0, &mut rng(3)).unwrap();
        assert_eq!(g.num_edges(), 20 * 2);
        for u in g.node_ids() {
            assert_eq!(g.degree(u), 4);
        }
    }

    #[test]
    fn watts_strogatz_preserves_edge_budget_approximately() {
        let g = watts_strogatz(100, 6, 0.3, &mut rng(3)).unwrap();
        // Rewiring can only lose edges to duplicate-collisions, never gain.
        assert!(g.num_edges() <= 300);
        assert!(g.num_edges() > 280);
    }

    #[test]
    fn watts_strogatz_rejects_bad_params() {
        assert!(watts_strogatz(10, 3, 0.1, &mut rng(1)).is_err()); // odd k
        assert!(watts_strogatz(10, 10, 0.1, &mut rng(1)).is_err()); // k >= n
        assert!(watts_strogatz(10, 4, 1.4, &mut rng(1)).is_err()); // bad beta
    }

    #[test]
    fn barabasi_albert_counts_and_connectivity() {
        let g = barabasi_albert(200, 3, &mut rng(9)).unwrap();
        assert_eq!(g.num_nodes(), 200);
        // Seed K4 (6 edges) + 3 per added node (unless saturated).
        assert_eq!(g.num_edges(), 6 + 3 * (200 - 4));
        assert!(is_connected(&g));
        for u in g.node_ids() {
            assert!(g.degree(u) >= 3);
        }
    }

    #[test]
    fn barabasi_albert_rejects_bad_params() {
        assert!(barabasi_albert(5, 0, &mut rng(1)).is_err());
        assert!(barabasi_albert(3, 3, &mut rng(1)).is_err());
    }

    #[test]
    fn holme_kim_is_connected_and_clustered() {
        let g = holme_kim(500, 4, 0.9, &mut rng(11)).unwrap();
        assert!(is_connected(&g));
        let cc = crate::algo::clustering::average_clustering(&g);
        let g_ba = barabasi_albert(500, 4, &mut rng(11)).unwrap();
        let cc_ba = crate::algo::clustering::average_clustering(&g_ba);
        assert!(
            cc > cc_ba,
            "triad formation should raise clustering: HK {cc} vs BA {cc_ba}"
        );
    }

    #[test]
    fn social_circles_like_matches_facebook_scale() {
        let g = social_circles_like(&mut rng(2022)).unwrap();
        assert_eq!(g.num_nodes(), FACEBOOK_NODES as usize);
        let mean = g.mean_degree();
        assert!(
            (mean - 43.7).abs() < 4.0,
            "mean degree {mean} should be close to facebook's 43.7"
        );
        assert!(is_connected(&g));
        // The circle structure must reproduce the dataset's long graph
        // distances (diameter 8 in SNAP's stats).
        let diameter = crate::algo::bfs::diameter_lower_bound(&g, NodeId::new(0));
        assert!(
            (6..=30).contains(&diameter),
            "diameter proxy {diameter} should be facebook-like (>= 6)"
        );
        let clustering = crate::algo::clustering::average_clustering(&g);
        assert!(clustering > 0.5, "circles must be clustered: {clustering}");
    }

    #[test]
    fn relaxed_caveman_structure() {
        let g = relaxed_caveman(200, 20, 1.0, 0, &mut rng(3)).unwrap();
        assert!(is_connected(&g));
        // Full cliques of 20 plus one ring edge per community.
        assert_eq!(g.num_edges(), 10 * (20 * 19 / 2) + 10);
        assert!(relaxed_caveman(0, 10, 0.5, 1, &mut rng(3)).is_err());
        assert!(relaxed_caveman(10, 1, 0.5, 1, &mut rng(3)).is_err());
        assert!(relaxed_caveman(10, 5, 1.5, 1, &mut rng(3)).is_err());
    }

    #[test]
    fn social_circles_like_scaled_small() {
        for n in [20u32, 60, 150] {
            let g = social_circles_like_scaled(n, &mut rng(5)).unwrap();
            assert_eq!(g.num_nodes(), n as usize);
            assert!(is_connected(&g), "n = {n}");
        }
    }

    #[test]
    fn sbm_respects_block_structure() {
        let g = stochastic_block_model(&[50, 50], 0.5, 0.01, &mut rng(4)).unwrap();
        assert_eq!(g.num_nodes(), 100);
        let mut within = 0usize;
        let mut across = 0usize;
        for (u, v) in g.edges() {
            if (u.index() < 50) == (v.index() < 50) {
                within += 1;
            } else {
                across += 1;
            }
        }
        assert!(
            within > 8 * across,
            "within {within} should dominate across {across}"
        );
    }

    #[test]
    fn sbm_rejects_empty_blocks() {
        assert!(stochastic_block_model(&[], 0.5, 0.1, &mut rng(1)).is_err());
    }

    #[test]
    fn deterministic_topologies() {
        let p = path(5);
        assert_eq!(p.num_edges(), 4);
        assert_eq!(p.degree(NodeId::new(0)), 1);
        assert_eq!(p.degree(NodeId::new(2)), 2);

        let r = ring(6).unwrap();
        assert_eq!(r.num_edges(), 6);
        for u in r.node_ids() {
            assert_eq!(r.degree(u), 2);
        }
        assert!(ring(2).is_err());

        let c = complete(5);
        assert_eq!(c.num_edges(), 10);

        let s = star(5);
        assert_eq!(s.degree(NodeId::new(0)), 4);
        assert_eq!(s.num_edges(), 4);

        let g = grid(3, 4);
        assert_eq!(g.num_nodes(), 12);
        assert_eq!(g.num_edges(), 3 * 3 + 2 * 4);

        let t = balanced_tree(2, 3).unwrap();
        assert_eq!(t.num_nodes(), 15);
        assert_eq!(t.num_edges(), 14);
        assert!(balanced_tree(0, 2).is_err());
    }

    #[test]
    fn random_connected_is_connected() {
        for seed in 0..5 {
            let g = random_connected(64, 20, &mut rng(seed)).unwrap();
            assert!(is_connected(&g));
            assert!(g.num_edges() >= 63);
        }
    }

    #[test]
    fn generators_are_deterministic_under_seed() {
        let a = social_circles_like_scaled(200, &mut rng(77)).unwrap();
        let b = social_circles_like_scaled(200, &mut rng(77)).unwrap();
        assert_eq!(a, b);
        let c = erdos_renyi(100, 0.1, &mut rng(13)).unwrap();
        let d = erdos_renyi(100, 0.1, &mut rng(13)).unwrap();
        assert_eq!(c, d);
    }
}
