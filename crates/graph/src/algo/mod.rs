//! Graph algorithms used by the search scheme and its evaluation.
//!
//! * [`bfs`] — single-source distances, distance rings and shortest paths;
//!   the paper's accuracy experiment samples one querying node per BFS ring
//!   around the gold document's host.
//! * [`components`] — connected components and largest-component extraction.
//! * [`clustering`] — local/average/global clustering coefficients, used to
//!   validate the social-graph generator calibration.
//! * [`stats`] — degree statistics and graph summaries for reports.

pub mod bfs;
pub mod clustering;
pub mod components;
pub mod stats;
