//! Breadth-first search: distances, rings, paths and eccentricities.

use std::collections::VecDeque;

use crate::{Graph, NodeId};

/// Computes BFS hop distances from `source` to every node.
///
/// Unreachable nodes map to `None`.
///
/// # Example
///
/// ```
/// use gdsearch_graph::{generators, NodeId};
/// use gdsearch_graph::algo::bfs;
///
/// let g = generators::path(4); // 0 - 1 - 2 - 3
/// let d = bfs::distances(&g, NodeId::new(0));
/// assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3)]);
/// ```
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn distances(g: &Graph, source: NodeId) -> Vec<Option<u32>> {
    let mut dist = vec![None; g.num_nodes()];
    let mut queue = VecDeque::new();
    dist[source.index()] = Some(0);
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        // Queued nodes always have a distance; skip defensively if not.
        let Some(du) = dist[u.index()] else { continue };
        for v in g.neighbors(u) {
            if dist[v.index()].is_none() {
                dist[v.index()] = Some(du + 1);
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Groups nodes by exact BFS distance from `source`: `rings[d]` holds every
/// node at distance `d`, for `d <= max_distance`.
///
/// Ring 0 is always `[source]`. Rings beyond the graph's reach are empty.
/// The evaluation harness uses this to sample one querying node per ring
/// around the gold document's host (paper §V-C).
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn distance_rings(g: &Graph, source: NodeId, max_distance: u32) -> Vec<Vec<NodeId>> {
    let dist = distances(g, source);
    let mut rings = vec![Vec::new(); max_distance as usize + 1];
    for (i, d) in dist.iter().enumerate() {
        if let Some(d) = d {
            if *d <= max_distance {
                rings[*d as usize].push(NodeId::new(i as u32));
            }
        }
    }
    rings
}

/// Returns one shortest path from `source` to `target` (inclusive of both),
/// or `None` if `target` is unreachable.
///
/// # Panics
///
/// Panics if either endpoint is out of range.
pub fn shortest_path(g: &Graph, source: NodeId, target: NodeId) -> Option<Vec<NodeId>> {
    if source == target {
        return Some(vec![source]);
    }
    let mut parent: Vec<Option<NodeId>> = vec![None; g.num_nodes()];
    let mut seen = vec![false; g.num_nodes()];
    let mut queue = VecDeque::new();
    seen[source.index()] = true;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        for v in g.neighbors(u) {
            if !seen[v.index()] {
                seen[v.index()] = true;
                parent[v.index()] = Some(u);
                if v == target {
                    let mut rev = vec![v];
                    let mut cur = u;
                    loop {
                        rev.push(cur);
                        match parent[cur.index()] {
                            Some(p) => cur = p,
                            None => break,
                        }
                    }
                    rev.reverse();
                    return Some(rev);
                }
                queue.push_back(v);
            }
        }
    }
    None
}

/// Eccentricity of `u`: the maximum finite BFS distance to any reachable
/// node. Returns 0 for an isolated node.
///
/// # Panics
///
/// Panics if `u` is out of range.
pub fn eccentricity(g: &Graph, u: NodeId) -> u32 {
    distances(g, u).iter().flatten().copied().max().unwrap_or(0)
}

/// Estimates the diameter (longest shortest path) of the largest component by
/// double-sweep BFS: run BFS from `start`, then from the farthest node found.
/// Exact on trees; a strong lower bound in general.
///
/// # Panics
///
/// Panics if `start` is out of range.
pub fn diameter_lower_bound(g: &Graph, start: NodeId) -> u32 {
    let d1 = distances(g, start);
    let far = d1
        .iter()
        .enumerate()
        .filter_map(|(i, d)| d.map(|d| (i, d)))
        .max_by_key(|&(_, d)| d)
        .map(|(i, _)| NodeId::new(i as u32))
        .unwrap_or(start);
    eccentricity(g, far)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn distances_on_ring() {
        let g = generators::ring(6).unwrap();
        let d = distances(&g, NodeId::new(0));
        assert_eq!(
            d,
            vec![Some(0), Some(1), Some(2), Some(3), Some(2), Some(1)]
        );
    }

    #[test]
    fn distances_mark_unreachable() {
        let g = Graph::from_edges(4, [(0, 1)]).unwrap();
        let d = distances(&g, NodeId::new(0));
        assert_eq!(d[1], Some(1));
        assert_eq!(d[2], None);
        assert_eq!(d[3], None);
    }

    #[test]
    fn rings_partition_reachable_nodes() {
        let g = generators::grid(4, 4);
        let rings = distance_rings(&g, NodeId::new(0), 6);
        let total: usize = rings.iter().map(Vec::len).sum();
        assert_eq!(total, 16);
        assert_eq!(rings[0], vec![NodeId::new(0)]);
        // Manhattan distance on the grid.
        assert_eq!(rings[1].len(), 2);
        assert_eq!(rings[6].len(), 1); // opposite corner
    }

    #[test]
    fn rings_respect_max_distance() {
        let g = generators::path(10);
        let rings = distance_rings(&g, NodeId::new(0), 3);
        assert_eq!(rings.len(), 4);
        assert_eq!(rings[3], vec![NodeId::new(3)]);
    }

    #[test]
    fn shortest_path_endpoints_and_length() {
        let g = generators::grid(3, 3);
        let p = shortest_path(&g, NodeId::new(0), NodeId::new(8)).unwrap();
        assert_eq!(p.first(), Some(&NodeId::new(0)));
        assert_eq!(p.last(), Some(&NodeId::new(8)));
        assert_eq!(p.len(), 5); // 4 hops on the grid
        for w in p.windows(2) {
            assert!(g.has_edge(w[0], w[1]));
        }
    }

    #[test]
    fn shortest_path_same_node() {
        let g = generators::path(3);
        assert_eq!(
            shortest_path(&g, NodeId::new(1), NodeId::new(1)),
            Some(vec![NodeId::new(1)])
        );
    }

    #[test]
    fn shortest_path_unreachable() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        assert_eq!(shortest_path(&g, NodeId::new(0), NodeId::new(3)), None);
    }

    #[test]
    fn eccentricity_and_diameter() {
        let g = generators::path(7);
        assert_eq!(eccentricity(&g, NodeId::new(0)), 6);
        assert_eq!(eccentricity(&g, NodeId::new(3)), 3);
        assert_eq!(diameter_lower_bound(&g, NodeId::new(3)), 6);
    }

    #[test]
    fn eccentricity_isolated_node() {
        let g = Graph::empty(3);
        assert_eq!(eccentricity(&g, NodeId::new(1)), 0);
    }

    use crate::Graph;
}
