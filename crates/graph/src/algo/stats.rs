//! Degree statistics and graph summaries for experiment reports.

use serde::{Deserialize, Serialize};

use crate::algo::{bfs, clustering, components};
use crate::{Graph, NodeId};

/// Summary statistics of a degree sequence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegreeStats {
    /// Smallest degree.
    pub min: usize,
    /// Largest degree.
    pub max: usize,
    /// Mean degree.
    pub mean: f64,
    /// Median degree (lower median for even counts).
    pub median: usize,
}

/// Computes [`DegreeStats`] for a graph. Returns all-zero stats for the
/// empty graph.
pub fn degree_stats(g: &Graph) -> DegreeStats {
    if g.num_nodes() == 0 {
        return DegreeStats {
            min: 0,
            max: 0,
            mean: 0.0,
            median: 0,
        };
    }
    let mut degrees: Vec<usize> = g.node_ids().map(|u| g.degree(u)).collect();
    degrees.sort_unstable();
    DegreeStats {
        min: degrees.first().copied().unwrap_or(0),
        max: degrees.last().copied().unwrap_or(0),
        mean: g.mean_degree(),
        median: degrees.get((degrees.len() - 1) / 2).copied().unwrap_or(0),
    }
}

/// Histogram of node degrees: `histogram[d]` = number of nodes with degree
/// `d`.
pub fn degree_histogram(g: &Graph) -> Vec<usize> {
    let max = g.node_ids().map(|u| g.degree(u)).max().unwrap_or(0);
    let mut hist = vec![0usize; max + 1];
    for u in g.node_ids() {
        hist[g.degree(u)] += 1;
    }
    hist
}

/// One-stop structural summary of a graph, as reported in experiment logs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphSummary {
    /// Number of nodes.
    pub num_nodes: usize,
    /// Number of undirected edges.
    pub num_edges: usize,
    /// Degree statistics.
    pub degrees: DegreeStats,
    /// Number of connected components.
    pub components: u32,
    /// Size of the largest component.
    pub largest_component: usize,
    /// Average local clustering coefficient.
    pub average_clustering: f64,
    /// Double-sweep BFS lower bound on the diameter (from node 0).
    pub diameter_lower_bound: u32,
}

/// Computes a [`GraphSummary`].
///
/// Costs one clustering pass (`O(Σ deg²)`) plus two BFS traversals, so it is
/// intended for setup-time logging rather than inner loops.
pub fn summarize(g: &Graph) -> GraphSummary {
    let comps = components::connected_components(g);
    let largest = comps.sizes().into_iter().max().unwrap_or(0);
    GraphSummary {
        num_nodes: g.num_nodes(),
        num_edges: g.num_edges(),
        degrees: degree_stats(g),
        components: comps.count(),
        largest_component: largest,
        average_clustering: clustering::average_clustering(g),
        diameter_lower_bound: if g.num_nodes() == 0 {
            0
        } else {
            bfs::diameter_lower_bound(g, NodeId::new(0))
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn degree_stats_on_star() {
        let g = generators::star(5);
        let s = degree_stats(&g);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 4);
        assert_eq!(s.median, 1);
        assert!((s.mean - 2.0 * 4.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn degree_stats_empty() {
        let s = degree_stats(&crate::Graph::empty(0));
        assert_eq!(s.max, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn histogram_counts_nodes() {
        let g = generators::star(5);
        let h = degree_histogram(&g);
        assert_eq!(h[1], 4);
        assert_eq!(h[4], 1);
        assert_eq!(h.iter().sum::<usize>(), 5);
    }

    #[test]
    fn summary_of_ring() {
        let g = generators::ring(8).unwrap();
        let s = summarize(&g);
        assert_eq!(s.num_nodes, 8);
        assert_eq!(s.num_edges, 8);
        assert_eq!(s.components, 1);
        assert_eq!(s.largest_component, 8);
        assert_eq!(s.degrees.min, 2);
        assert_eq!(s.degrees.max, 2);
        assert_eq!(s.diameter_lower_bound, 4);
    }

    #[test]
    fn summary_empty_graph() {
        let s = summarize(&crate::Graph::empty(0));
        assert_eq!(s.num_nodes, 0);
        assert_eq!(s.components, 0);
        assert_eq!(s.diameter_lower_bound, 0);
    }
}
