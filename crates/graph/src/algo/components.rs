//! Connected components and largest-component extraction.

use std::collections::VecDeque;

use crate::{Graph, GraphBuilder, NodeId};

/// Connected-component labelling of a graph.
///
/// Produced by [`connected_components`]. Labels are dense `0..count`, in
/// order of discovery from the smallest node id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Components {
    labels: Vec<u32>,
    count: u32,
}

impl Components {
    /// Component label of node `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn label(&self, u: NodeId) -> u32 {
        self.labels[u.index()]
    }

    /// Number of connected components.
    pub fn count(&self) -> u32 {
        self.count
    }

    /// Whether `u` and `v` are in the same component.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    pub fn same_component(&self, u: NodeId, v: NodeId) -> bool {
        self.labels[u.index()] == self.labels[v.index()]
    }

    /// Size of every component, indexed by label.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.count as usize];
        for &l in &self.labels {
            sizes[l as usize] += 1;
        }
        sizes
    }

    /// Label of a largest component (ties broken by smallest label).
    pub fn largest(&self) -> Option<u32> {
        self.sizes()
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(l, _)| l as u32)
    }
}

/// Labels every node with its connected component.
pub fn connected_components(g: &Graph) -> Components {
    let n = g.num_nodes();
    let mut labels = vec![u32::MAX; n];
    let mut count = 0u32;
    let mut queue = VecDeque::new();
    for start in 0..n {
        if labels[start] != u32::MAX {
            continue;
        }
        labels[start] = count;
        queue.push_back(NodeId::new(start as u32));
        while let Some(u) = queue.pop_front() {
            for v in g.neighbors(u) {
                if labels[v.index()] == u32::MAX {
                    labels[v.index()] = count;
                    queue.push_back(v);
                }
            }
        }
        count += 1;
    }
    Components { labels, count }
}

/// Extracts the largest connected component as a new graph with compacted
/// node ids, together with the mapping from new ids to original ids.
///
/// Returns `(subgraph, original_ids)` where `original_ids[new.index()]` is
/// the node's id in `g`. For the empty graph returns an empty graph and map.
pub fn largest_component(g: &Graph) -> (Graph, Vec<NodeId>) {
    let comps = connected_components(g);
    let Some(target) = comps.largest() else {
        return (Graph::empty(0), Vec::new());
    };
    let mut old_to_new = vec![u32::MAX; g.num_nodes()];
    let mut new_to_old = Vec::new();
    for u in g.node_ids() {
        if comps.label(u) == target {
            old_to_new[u.index()] = new_to_old.len() as u32;
            new_to_old.push(u);
        }
    }
    let mut b = GraphBuilder::new(new_to_old.len() as u32);
    for (u, v) in g.edges() {
        let (nu, nv) = (old_to_new[u.index()], old_to_new[v.index()]);
        if nu != u32::MAX && nv != u32::MAX {
            b.add_edge(nu, nv).expect("remapped ids are in range");
        }
    }
    (b.build(), new_to_old)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_component() {
        let g = crate::generators::ring(5).unwrap();
        let c = connected_components(&g);
        assert_eq!(c.count(), 1);
        assert!(c.same_component(NodeId::new(0), NodeId::new(3)));
        assert_eq!(c.sizes(), vec![5]);
    }

    #[test]
    fn multiple_components() {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (3, 4)]).unwrap();
        let c = connected_components(&g);
        assert_eq!(c.count(), 3); // {0,1,2}, {3,4}, {5}
        assert!(!c.same_component(NodeId::new(0), NodeId::new(3)));
        assert_eq!(c.largest(), Some(0));
        let mut sizes = c.sizes();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 2, 3]);
    }

    #[test]
    fn empty_graph_components() {
        let g = Graph::empty(0);
        let c = connected_components(&g);
        assert_eq!(c.count(), 0);
        assert_eq!(c.largest(), None);
    }

    #[test]
    fn largest_component_extraction() {
        let g = Graph::from_edges(7, [(0, 1), (1, 2), (2, 0), (3, 4), (5, 6)]).unwrap();
        let (sub, map) = largest_component(&g);
        assert_eq!(sub.num_nodes(), 3);
        assert_eq!(sub.num_edges(), 3);
        assert_eq!(map, vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)]);
    }

    #[test]
    fn largest_component_of_empty() {
        let (sub, map) = largest_component(&Graph::empty(0));
        assert_eq!(sub.num_nodes(), 0);
        assert!(map.is_empty());
    }

    #[test]
    fn isolated_nodes_are_own_components() {
        let g = Graph::empty(4);
        let c = connected_components(&g);
        assert_eq!(c.count(), 4);
        assert_eq!(c.sizes(), vec![1, 1, 1, 1]);
    }
}
