//! Clustering coefficients.
//!
//! Used to validate that the synthetic social graph reproduces the high
//! clustering of the Facebook social-circles dataset (local clustering
//! ≈ 0.6 there), which matters because diffusion locality interacts with
//! triangle density.

use crate::{Graph, NodeId};

/// Local clustering coefficient of `u`: the fraction of neighbor pairs that
/// are themselves connected. Zero for nodes of degree < 2.
///
/// # Panics
///
/// Panics if `u` is out of range.
pub fn local_clustering(g: &Graph, u: NodeId) -> f64 {
    let neighbors = g.neighbor_slice(u);
    let k = neighbors.len();
    if k < 2 {
        return 0.0;
    }
    let mut links = 0usize;
    for (i, &a) in neighbors.iter().enumerate() {
        for &b in &neighbors[i + 1..] {
            if g.has_edge(a, b) {
                links += 1;
            }
        }
    }
    2.0 * links as f64 / (k * (k - 1)) as f64
}

/// Average of [`local_clustering`] over all nodes (Watts–Strogatz
/// definition). Zero for the empty graph.
pub fn average_clustering(g: &Graph) -> f64 {
    if g.num_nodes() == 0 {
        return 0.0;
    }
    let sum: f64 = g.node_ids().map(|u| local_clustering(g, u)).sum();
    sum / g.num_nodes() as f64
}

/// Global clustering coefficient (transitivity): `3 × triangles / open
/// triads`. Zero when the graph has no path of length two.
pub fn global_clustering(g: &Graph) -> f64 {
    let mut closed = 0u64; // ordered wedge endpoints that are connected
    let mut total = 0u64; // wedges (paths of length 2 centered anywhere)
    for u in g.node_ids() {
        let neighbors = g.neighbor_slice(u);
        let k = neighbors.len() as u64;
        if k < 2 {
            continue;
        }
        total += k * (k - 1) / 2;
        for (i, &a) in neighbors.iter().enumerate() {
            for &b in &neighbors[i + 1..] {
                if g.has_edge(a, b) {
                    closed += 1;
                }
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        closed as f64 / total as f64
    }
}

/// Counts the triangles of the graph exactly, via sorted-adjacency merge.
pub fn triangle_count(g: &Graph) -> u64 {
    let mut triangles = 0u64;
    for u in g.node_ids() {
        for &v in g.neighbor_slice(u) {
            if v <= u {
                continue;
            }
            // Count common neighbors w with w > v to count each triangle once.
            let (mut i, mut j) = (0, 0);
            let (nu, nv) = (g.neighbor_slice(u), g.neighbor_slice(v));
            while i < nu.len() && j < nv.len() {
                match nu[i].cmp(&nv[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        if nu[i] > v {
                            triangles += 1;
                        }
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
    }
    triangles
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn triangle_is_fully_clustered() {
        let g = generators::complete(3);
        assert_eq!(local_clustering(&g, NodeId::new(0)), 1.0);
        assert_eq!(average_clustering(&g), 1.0);
        assert_eq!(global_clustering(&g), 1.0);
        assert_eq!(triangle_count(&g), 1);
    }

    #[test]
    fn star_has_zero_clustering() {
        let g = generators::star(6);
        assert_eq!(average_clustering(&g), 0.0);
        assert_eq!(global_clustering(&g), 0.0);
        assert_eq!(triangle_count(&g), 0);
    }

    #[test]
    fn low_degree_nodes_are_zero() {
        let g = generators::path(3);
        assert_eq!(local_clustering(&g, NodeId::new(0)), 0.0);
        assert_eq!(local_clustering(&g, NodeId::new(1)), 0.0);
    }

    #[test]
    fn complete_graph_triangle_count() {
        let g = generators::complete(6);
        // C(6,3) = 20 triangles.
        assert_eq!(triangle_count(&g), 20);
        assert_eq!(global_clustering(&g), 1.0);
    }

    #[test]
    fn paw_graph_values() {
        // Triangle 0-1-2 plus pendant 3 attached to 0.
        let g = crate::Graph::from_edges(4, [(0, 1), (1, 2), (2, 0), (0, 3)]).unwrap();
        assert_eq!(triangle_count(&g), 1);
        // Node 0 has degree 3: one closed pair of three => 1/3.
        assert!((local_clustering(&g, NodeId::new(0)) - 1.0 / 3.0).abs() < 1e-12);
        // Nodes 1, 2: degree 2, their single pair is closed => 1.
        assert_eq!(local_clustering(&g, NodeId::new(1)), 1.0);
        // Average: (1/3 + 1 + 1 + 0) / 4.
        let expected = (1.0 / 3.0 + 2.0) / 4.0;
        assert!((average_clustering(&g) - expected).abs() < 1e-12);
        // Transitivity: wedges = C(3,2) + 1 + 1 = 5 at centers 0,1,2; closed = 3.
        assert!((global_clustering(&g) - 3.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_is_zero() {
        let g = crate::Graph::empty(0);
        assert_eq!(average_clustering(&g), 0.0);
        assert_eq!(global_clustering(&g), 0.0);
    }
}
