use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{GraphError, NodeId};

/// An immutable, simple, undirected graph stored in compressed sparse row
/// (CSR) form.
///
/// Nodes are dense indices `0..num_nodes`; adjacency lists are sorted, free
/// of duplicates and self-loops. The representation is compact (two flat
/// vectors) and iteration over neighborhoods is cache-friendly, which matters
/// because both BFS-based evaluation and Personalized PageRank diffusion are
/// neighborhood-scan heavy.
///
/// Construct a graph with [`Graph::from_edges`] or incrementally with
/// [`GraphBuilder`].
///
/// # Example
///
/// ```
/// use gdsearch_graph::{Graph, NodeId};
///
/// # fn main() -> Result<(), gdsearch_graph::GraphError> {
/// // A triangle plus a pendant node.
/// let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 0), (2, 3)])?;
/// assert_eq!(g.num_nodes(), 4);
/// assert_eq!(g.num_edges(), 4);
/// assert_eq!(g.degree(NodeId::new(2)), 3);
/// let neighbors: Vec<_> = g.neighbors(NodeId::new(2)).collect();
/// assert_eq!(neighbors, vec![NodeId::new(0), NodeId::new(1), NodeId::new(3)]);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    /// `offsets[u]..offsets[u + 1]` indexes `neighbors` for node `u`.
    offsets: Vec<usize>,
    /// Concatenated sorted adjacency lists.
    neighbors: Vec<NodeId>,
    /// Number of undirected edges.
    num_edges: usize,
}

impl Graph {
    /// Builds a graph with `num_nodes` nodes from an iterator of undirected
    /// edges given as `(u, v)` index pairs.
    ///
    /// Duplicate edges (in either orientation) are collapsed.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::SelfLoop`] for `(u, u)` pairs and
    /// [`GraphError::NodeOutOfRange`] for endpoints `>= num_nodes`.
    pub fn from_edges<I>(num_nodes: u32, edges: I) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = (u32, u32)>,
    {
        let mut builder = GraphBuilder::new(num_nodes);
        for (u, v) in edges {
            builder.add_edge(u, v)?;
        }
        Ok(builder.build())
    }

    /// Returns an empty graph with `num_nodes` isolated nodes.
    pub fn empty(num_nodes: u32) -> Self {
        GraphBuilder::new(num_nodes).build()
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Degree (number of neighbors) of `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        self.offsets[u.index() + 1] - self.offsets[u.index()]
    }

    /// Iterates over the sorted neighbors of `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> Neighbors<'_> {
        Neighbors {
            inner: self.neighbor_slice(u).iter(),
        }
    }

    /// Returns the sorted neighbor list of `u` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[inline]
    pub fn neighbor_slice(&self, u: NodeId) -> &[NodeId] {
        &self.neighbors[self.offsets[u.index()]..self.offsets[u.index() + 1]]
    }

    /// Tests whether the undirected edge `(u, v)` exists.
    ///
    /// Runs in `O(log deg(u))`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbor_slice(u).binary_search(&v).is_ok()
    }

    /// Iterates over all node ids `0..num_nodes`.
    pub fn node_ids(&self) -> impl ExactSizeIterator<Item = NodeId> + Clone {
        (0..self.num_nodes() as u32).map(NodeId::new)
    }

    /// Iterates over each undirected edge exactly once, as `(u, v)` with
    /// `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.node_ids().flat_map(move |u| {
            self.neighbor_slice(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Mean degree `2E / N`, or 0 for the empty graph.
    pub fn mean_degree(&self) -> f64 {
        if self.num_nodes() == 0 {
            0.0
        } else {
            2.0 * self.num_edges as f64 / self.num_nodes() as f64
        }
    }

    /// Validates that `u` is a node of this graph.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] otherwise.
    pub fn check_node(&self, u: NodeId) -> Result<(), GraphError> {
        if u.index() < self.num_nodes() {
            Ok(())
        } else {
            Err(GraphError::NodeOutOfRange {
                node: u.as_u32(),
                num_nodes: self.num_nodes() as u32,
            })
        }
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Graph")
            .field("num_nodes", &self.num_nodes())
            .field("num_edges", &self.num_edges)
            .finish()
    }
}

/// Iterator over the neighbors of a node, in ascending id order.
///
/// Produced by [`Graph::neighbors`].
#[derive(Debug, Clone)]
pub struct Neighbors<'a> {
    inner: std::slice::Iter<'a, NodeId>,
}

impl<'a> Iterator for Neighbors<'a> {
    type Item = NodeId;

    #[inline]
    fn next(&mut self) -> Option<NodeId> {
        self.inner.next().copied()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl ExactSizeIterator for Neighbors<'_> {}

/// Incremental builder for [`Graph`].
///
/// Collects edges (deduplicating both orientations), then assembles the CSR
/// arrays in one pass.
///
/// # Example
///
/// ```
/// use gdsearch_graph::GraphBuilder;
///
/// # fn main() -> Result<(), gdsearch_graph::GraphError> {
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1)?;
/// b.add_edge(1, 0)?; // duplicate orientation, collapsed
/// b.add_edge(1, 2)?;
/// let g = b.build();
/// assert_eq!(g.num_edges(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    num_nodes: u32,
    edges: BTreeSet<(u32, u32)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `num_nodes` nodes and no edges.
    pub fn new(num_nodes: u32) -> Self {
        GraphBuilder {
            num_nodes,
            edges: BTreeSet::new(),
        }
    }

    /// Number of nodes the built graph will have.
    pub fn num_nodes(&self) -> u32 {
        self.num_nodes
    }

    /// Number of distinct undirected edges added so far.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds the undirected edge `(u, v)`. Duplicates are ignored.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::SelfLoop`] if `u == v` and
    /// [`GraphError::NodeOutOfRange`] if an endpoint is `>= num_nodes`.
    pub fn add_edge(&mut self, u: u32, v: u32) -> Result<&mut Self, GraphError> {
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        for w in [u, v] {
            if w >= self.num_nodes {
                return Err(GraphError::NodeOutOfRange {
                    node: w,
                    num_nodes: self.num_nodes,
                });
            }
        }
        let key = if u < v { (u, v) } else { (v, u) };
        self.edges.insert(key);
        Ok(self)
    }

    /// Tests whether the undirected edge `(u, v)` was already added.
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        let key = if u < v { (u, v) } else { (v, u) };
        self.edges.contains(&key)
    }

    /// Assembles the CSR graph.
    pub fn build(&self) -> Graph {
        let n = self.num_nodes as usize;
        let mut degrees = vec![0usize; n];
        for &(u, v) in &self.edges {
            degrees[u as usize] += 1;
            degrees[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut running = 0usize;
        for d in &degrees {
            running += d;
            offsets.push(running);
        }
        let mut neighbors = vec![NodeId::new(0); 2 * self.edges.len()];
        let mut cursor = offsets.clone();
        // BTreeSet iterates (u, v) in ascending order with u < v, so each
        // node's neighbor list is filled in ascending order automatically.
        for &(u, v) in &self.edges {
            neighbors[cursor[u as usize]] = NodeId::new(v);
            cursor[u as usize] += 1;
        }
        for &(u, v) in &self.edges {
            neighbors[cursor[v as usize]] = NodeId::new(u);
            cursor[v as usize] += 1;
        }
        // The second pass appends smaller ids after larger ones for v's list,
        // so a per-node sort is still required.
        for u in 0..n {
            neighbors[offsets[u]..offsets[u + 1]].sort_unstable();
        }
        Graph {
            offsets,
            neighbors,
            num_edges: self.edges.len(),
        }
    }
}

/// Serialized form of [`Graph`]: node count plus canonical edge list.
#[derive(Serialize, Deserialize)]
struct GraphData {
    num_nodes: u32,
    edges: Vec<(u32, u32)>,
}

impl Serialize for Graph {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let data = GraphData {
            num_nodes: self.num_nodes() as u32,
            edges: self
                .edges()
                .map(|(u, v)| (u.as_u32(), v.as_u32()))
                .collect(),
        };
        data.serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for Graph {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let data = GraphData::deserialize(deserializer)?;
        Graph::from_edges(data.num_nodes, data.edges).map_err(serde::de::Error::custom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_with_tail() -> Graph {
        Graph::from_edges(4, [(0, 1), (1, 2), (2, 0), (2, 3)]).unwrap()
    }

    #[test]
    fn from_edges_builds_sorted_adjacency() {
        let g = triangle_with_tail();
        assert_eq!(
            g.neighbor_slice(NodeId::new(0)),
            &[NodeId::new(1), NodeId::new(2)]
        );
        assert_eq!(
            g.neighbor_slice(NodeId::new(2)),
            &[NodeId::new(0), NodeId::new(1), NodeId::new(3)]
        );
        assert_eq!(g.neighbor_slice(NodeId::new(3)), &[NodeId::new(2)]);
    }

    #[test]
    fn duplicate_edges_collapse() {
        let g = Graph::from_edges(3, [(0, 1), (1, 0), (0, 1)]).unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(NodeId::new(0)), 1);
    }

    #[test]
    fn self_loop_is_rejected() {
        let err = Graph::from_edges(3, [(1, 1)]).unwrap_err();
        assert!(matches!(err, GraphError::SelfLoop { node: 1 }));
    }

    #[test]
    fn out_of_range_is_rejected() {
        let err = Graph::from_edges(3, [(0, 3)]).unwrap_err();
        assert!(matches!(
            err,
            GraphError::NodeOutOfRange {
                node: 3,
                num_nodes: 3
            }
        ));
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(5);
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.degree(NodeId::new(4)), 0);
        assert_eq!(g.mean_degree(), 0.0);
    }

    #[test]
    fn zero_node_graph() {
        let g = Graph::empty(0);
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.mean_degree(), 0.0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn has_edge_is_symmetric() {
        let g = triangle_with_tail();
        assert!(g.has_edge(NodeId::new(0), NodeId::new(1)));
        assert!(g.has_edge(NodeId::new(1), NodeId::new(0)));
        assert!(!g.has_edge(NodeId::new(0), NodeId::new(3)));
    }

    #[test]
    fn edges_enumerates_each_once() {
        let g = triangle_with_tail();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), g.num_edges());
        for (u, v) in edges {
            assert!(u < v);
            assert!(g.has_edge(u, v));
        }
    }

    #[test]
    fn mean_degree_matches_handshake_lemma() {
        let g = triangle_with_tail();
        assert!((g.mean_degree() - 2.0 * 4.0 / 4.0).abs() < 1e-12);
        let total: usize = g.node_ids().map(|u| g.degree(u)).sum();
        assert_eq!(total, 2 * g.num_edges());
    }

    #[test]
    fn check_node_bounds() {
        let g = triangle_with_tail();
        assert!(g.check_node(NodeId::new(3)).is_ok());
        assert!(g.check_node(NodeId::new(4)).is_err());
    }

    #[test]
    fn builder_reports_counts() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1).unwrap();
        b.add_edge(2, 1).unwrap();
        assert_eq!(b.num_nodes(), 4);
        assert_eq!(b.num_edges(), 2);
        assert!(b.has_edge(1, 2));
        assert!(!b.has_edge(0, 2));
    }

    #[test]
    fn debug_output_is_compact() {
        let g = triangle_with_tail();
        let s = format!("{g:?}");
        assert!(s.contains("num_nodes: 4"));
        assert!(s.contains("num_edges: 4"));
    }
}
