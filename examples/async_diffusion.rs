//! Asynchronous diffusion demo: shows that the decentralized protocol the
//! paper relies on (§IV-B, p2pGNN-style) converges to the same embeddings
//! as centralized synchronous power iteration — first in a deterministic
//! event simulation with message delays, then on real OS threads.
//!
//! ```text
//! cargo run -p gdsearch-examples --release --bin async_diffusion
//! ```

// Demo code: wall-clock timing is display output, not a result.
#![allow(clippy::disallowed_methods)]

use gdsearch_diffusion::gossip::{self, GossipConfig};
use gdsearch_diffusion::push::{self, PushConfig};
use gdsearch_diffusion::{power, threaded, PprConfig, Signal};
use gdsearch_embed::synthetic::SyntheticCorpus;
use gdsearch_graph::generators;
use gdsearch_graph::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(123);
    let graph = generators::social_circles_like_scaled(400, &mut rng)?;
    let corpus = SyntheticCorpus::builder()
        .vocab_size(100)
        .dim(16)
        .generate(&mut rng)?;

    // Sparse personalization: 20 random nodes "hold documents".
    let sources: Vec<(NodeId, gdsearch_embed::Embedding)> = (0..20)
        .map(|_| {
            let node = rng.random_range(0..400u32);
            let word = rng.random_range(0..100u32);
            (
                NodeId::new(node),
                corpus.embedding(gdsearch_embed::WordId::new(word)).clone(),
            )
        })
        .collect();
    let e0 = Signal::from_sparse_rows(400, 16, &sources)?;
    let cfg = PprConfig::new(0.5)?.with_tolerance(1e-6)?;

    // Reference: synchronous power iteration (Eq. 7).
    let t0 = std::time::Instant::now();
    let sync = power::diffuse(&graph, &e0, &cfg)?;
    println!(
        "synchronous power iteration: {} sweeps, residual {:.2e}, {:.1} ms",
        sync.iterations,
        sync.residual,
        t0.elapsed().as_secs_f64() * 1e3
    );

    // Asynchronous gossip with exponential message delays.
    let t0 = std::time::Instant::now();
    let gossip_cfg = GossipConfig::new(cfg).with_mean_delay(0.5)?;
    let async_out = gossip::diffuse(&graph, &e0, &gossip_cfg, &mut rng)?;
    println!(
        "asynchronous gossip: {} node activations over {:.1} virtual time units, {:.1} ms",
        async_out.updates,
        async_out.virtual_time,
        t0.elapsed().as_secs_f64() * 1e3
    );
    println!(
        "  converged: {} | max |async - sync| = {:.2e}",
        async_out.converged,
        async_out.signal.max_abs_diff(&sync.signal)?
    );

    // Real threads: chaotic relaxation over shared state.
    for threads in [1, 2, 4, 8] {
        let t0 = std::time::Instant::now();
        let out = threaded::diffuse(&graph, &e0, &cfg, threads)?;
        println!(
            "threaded ({threads} workers): {} passes, converged {} , max diff {:.2e}, {:.1} ms",
            out.passes,
            out.converged,
            out.signal.max_abs_diff(&sync.signal)?,
            t0.elapsed().as_secs_f64() * 1e3
        );
    }

    // Forward push: sweep-free, work proportional to the pushed mass,
    // batched across the 20 source nodes. Identical output per thread
    // count, so the worker knob is purely about wall-clock.
    for threads in [1, 4] {
        let t0 = std::time::Instant::now();
        let push_cfg = PushConfig::new(cfg).with_threads(threads)?;
        let out = push::diffuse_sparse(&graph, 16, &sources, &push_cfg)?;
        println!(
            "forward push ({threads} workers): max diff {:.2e}, {:.1} ms",
            out.max_abs_diff(&sync.signal)?,
            t0.elapsed().as_secs_f64() * 1e3
        );
    }

    println!("\nAll engines agree: the decentralized asynchronous protocol");
    println!("reaches the PPR fixed point of Eq. (6), as claimed in §IV-B.");
    Ok(())
}
