//! Social-network content search: the paper's motivating scenario at
//! near-paper scale. Builds a Facebook-sized overlay, runs the accuracy
//! protocol for one document count, and prints the accuracy-vs-distance
//! curve for all three teleport probabilities.
//!
//! ```text
//! cargo run -p gdsearch-examples --release --bin social_search
//! ```
//!
//! (Use `--release`; the full-scale diffusion is slow in debug builds.)

use gdsearch::experiment::{accuracy, report, Workbench, WorkbenchSpec};
use gdsearch::SchemeConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(2022);

    // Paper-like environment, scaled to finish in about a minute: a
    // 1,000-node social graph with Facebook-like degree/clustering and a
    // 5,000-word corpus.
    let spec = WorkbenchSpec {
        nodes: 1000,
        vocab: 5000,
        dim: 64,
        topics: 100,
        num_queries: 200,
        min_cosine: 0.6,
        anisotropy: 0.3,
    };
    let workbench = Workbench::generate(&spec, &mut rng)?;
    println!(
        "social overlay: {} nodes / {} edges; corpus: {} words; {} query pairs\n",
        workbench.graph.num_nodes(),
        workbench.graph.num_edges(),
        workbench.corpus.len(),
        workbench.queries.len()
    );

    let config = accuracy::AccuracyConfig {
        total_docs: 100,
        alphas: vec![0.1, 0.5, 0.9],
        max_distance: 6,
        iterations: 20,
    };
    let base = SchemeConfig::default();
    let result = accuracy::run(&workbench, &config, &base, &mut rng)?;
    println!("{}", report::accuracy_markdown(&result));
    println!("Reading the table: the paper's Fig. 3b shape — near-perfect");
    println!("accuracy at distances 0-1, sharp decline past 2-3 hops.");
    Ok(())
}
