//! Bounded-transport demo: runs the paper's search protocol over both
//! simulator backends and shows what only the bandwidth-aware reactor can
//! show — link saturation, queueing delay and backpressure drops — by
//! comparing PPR-greedy diffusion search against TTL-bounded flooding on
//! narrow links.
//!
//! ```text
//! cargo run -p gdsearch-examples --release --bin bounded_transport
//! ```

use gdsearch::experiment::report;
use gdsearch::protocol::{ProtocolNetwork, SimBackend};
use gdsearch::{EngineConfig, Placement, PolicyKind, QueryEngine, SchemeConfig};
use gdsearch_embed::querygen::{self, QueryGenConfig};
use gdsearch_embed::synthetic::SyntheticCorpus;
use gdsearch_graph::{generators, NodeId};
use gdsearch_sim::{NetStats, TransportConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(77);
    let graph = generators::social_circles_like_scaled(300, &mut rng)?;
    let corpus = SyntheticCorpus::builder()
        .vocab_size(400)
        .dim(32)
        .generate(&mut rng)?;
    let queries = querygen::generate(
        &corpus,
        QueryGenConfig {
            num_queries: 5,
            min_cosine: 0.6,
        },
        &mut rng,
    )?;
    let pair = queries.pairs()[0];
    let mut words = vec![pair.gold];
    words.extend(queries.irrelevant().iter().copied().take(19));
    let placement = Placement::uniform(&graph, &words, &mut rng)?;
    let origins: Vec<NodeId> = (0..10)
        .map(|_| NodeId::new(rng.random_range(0..300)))
        .collect();

    let mut rows: Vec<(String, NetStats, usize)> = Vec::new();
    for (policy, ttl, name) in [
        (PolicyKind::PprGreedy, 30u32, "diffusion"),
        (PolicyKind::Flooding, 3u32, "flooding"),
    ] {
        let cfg = SchemeConfig::builder().policy(policy).ttl(ttl).build()?;
        let engine_cfg = EngineConfig::builder().scheme(cfg).build()?;
        let engine = QueryEngine::build(&graph, &corpus, &placement, engine_cfg, &mut rng)?;
        let scheme = engine.network();
        for (backend, backend_name) in [
            (SimBackend::Instant, "instant".to_string()),
            (
                // 1 KB/s links with short queues: the saturation regime.
                SimBackend::Bounded(
                    TransportConfig::default()
                        .with_bandwidth(1_000)?
                        .with_queue_capacity(16)?
                        .with_threads(4)?,
                ),
                "1 KB/s".to_string(),
            ),
        ] {
            let mut net = ProtocolNetwork::build(scheme, backend)?;
            for (i, &origin) in origins.iter().enumerate() {
                net.issue_query(origin, i as u64, corpus.embedding(pair.query).clone(), ttl)?;
            }
            net.run_to_completion(10_000_000)?;
            let hits = origins
                .iter()
                .enumerate()
                .filter(|(i, &origin)| {
                    net.completed(origin)
                        .map(|c| {
                            c.iter().any(|q| {
                                q.query_id == *i as u64
                                    && q.results.iter().any(|(doc, _, _)| *doc == 0)
                            })
                        })
                        .unwrap_or(false)
                })
                .count();
            rows.push((format!("{name} @ {backend_name}"), *net.stats(), hits));
        }
    }

    let labeled: Vec<(&str, &NetStats)> = rows.iter().map(|(l, s, _)| (l.as_str(), s)).collect();
    print!("{}", report::transport_markdown(&labeled));
    println!();
    for (label, stats, hits) in &rows {
        println!(
            "{label:>22}: recall {hits}/10, {:.1} KB total, mean queue wait {:.1} ticks",
            stats.bytes_sent as f64 / 1e3,
            stats.mean_queue_delay_ticks(),
        );
    }
    println!(
        "\nOn narrow links flooding pays in queueing delay and backpressure drops;\n\
         the diffusion-guided walk moves orders of magnitude fewer bytes for\n\
         comparable recall — the paper's bandwidth argument, measured."
    );
    Ok(())
}
