//! File-sharing under churn: runs the *full message-passing protocol* on
//! the discrete-event simulator, with link latency, message loss and node
//! failures — the operating conditions the paper's future work points at.
//!
//! Each node "shares files" (documents); a user issues queries while part
//! of the network is down. Responses backtrack to the querying node.
//!
//! ```text
//! cargo run -p gdsearch-examples --bin file_sharing
//! ```

use gdsearch::protocol::{build_protocol_network, issue_query};
use gdsearch::{EngineConfig, Placement, QueryEngine, SchemeConfig};
use gdsearch_embed::querygen::{self, QueryGenConfig};
use gdsearch_embed::synthetic::SyntheticCorpus;
use gdsearch_graph::generators;
use gdsearch_graph::NodeId;
use gdsearch_sim::churn::ChurnSchedule;
use gdsearch_sim::{LatencyModel, NetworkConfig, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(7);

    let graph = generators::social_circles_like_scaled(150, &mut rng)?;
    let corpus = SyntheticCorpus::builder()
        .vocab_size(400)
        .dim(32)
        .num_topics(16)
        .generate(&mut rng)?;
    let queries = querygen::generate(
        &corpus,
        QueryGenConfig {
            num_queries: 8,
            min_cosine: 0.6,
        },
        &mut rng,
    )?;
    println!(
        "file-sharing overlay: {} peers, {} shared files, {} prepared queries",
        graph.num_nodes(),
        60,
        queries.len()
    );

    // Share 60 files (1 gold per query later + filler).
    let pair = queries.pairs()[0];
    let mut words = vec![pair.gold];
    words.extend(queries.irrelevant().iter().copied().take(59));
    let placement = Placement::uniform(&graph, &words, &mut rng)?;
    let scheme_config = SchemeConfig::builder().ttl(30).top_k(3).build()?;
    let engine_config = EngineConfig::builder().scheme(scheme_config).build()?;
    let engine = QueryEngine::build(&graph, &corpus, &placement, engine_config, &mut rng)?;
    let scheme = engine.network();

    // 10% of peers fail during the first 5 virtual seconds and recover
    // after 2 seconds; links have 10-50 ms latency and 1% loss.
    let churn = ChurnSchedule::random_failures(150, 0.10, 5.0, 2.0, &mut rng)?;
    println!("churn schedule: {} down/up events", churn.len());
    let sim_config = NetworkConfig::default()
        .with_latency(LatencyModel::uniform(0.010, 0.050)?)
        .with_loss_probability(0.01)?
        .with_churn(churn)
        .with_seed(99)
        .with_trace_capacity(4096);
    let mut net = build_protocol_network(scheme, sim_config)?;

    // Issue 20 queries from random peers over the first 2 seconds.
    let origins: Vec<NodeId> = (0..20)
        .map(|_| NodeId::new(rng.random_range(0..150)))
        .collect();
    for (qid, &origin) in origins.iter().enumerate() {
        issue_query(
            &mut net,
            origin,
            qid as u64,
            corpus.embedding(pair.query).clone(),
            30,
        )?;
    }

    // Let the network run for 60 virtual seconds.
    net.run_until(SimTime::new(60.0).expect("valid time"));
    let stats = *net.stats();
    println!(
        "\ntransport: {} sent / {} delivered / {} lost / {} to-down peers, {:.1} KiB total",
        stats.sent,
        stats.delivered,
        stats.lost,
        stats.dropped_down,
        stats.bytes_sent as f64 / 1024.0
    );

    let mut completed = 0;
    let mut hits = 0;
    for &origin in &origins {
        for done in net.handler(origin)?.completed() {
            completed += 1;
            if done.results.iter().any(|(doc, _, _)| *doc == 0) {
                hits += 1;
            }
        }
    }
    println!(
        "queries: {} issued, {} completed (responses backtracked), {} found the target file",
        origins.len(),
        completed,
        hits
    );
    println!("(incomplete queries lost a message to churn/loss — the paper's");
    println!(" protocol has no retransmission; see protocol.rs docs)");
    Ok(())
}
