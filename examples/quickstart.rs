//! Quickstart: build a small decentralized search network and run one
//! query, printing every stage of the scheme.
//!
//! ```text
//! cargo run -p gdsearch-examples --bin quickstart
//! ```

use gdsearch::{EngineConfig, Placement, QueryEngine, QueryRequest, SchemeConfig};
use gdsearch_embed::querygen::{self, QueryGenConfig};
use gdsearch_embed::synthetic::SyntheticCorpus;
use gdsearch_graph::algo::bfs;
use gdsearch_graph::generators;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(42);

    // 1. A small social P2P overlay (Holme–Kim powerlaw-cluster graph,
    //    the calibrated stand-in for the paper's Facebook graph).
    let graph = generators::social_circles_like_scaled(200, &mut rng)?;
    println!(
        "overlay: {} nodes, {} edges, mean degree {:.1}",
        graph.num_nodes(),
        graph.num_edges(),
        graph.mean_degree()
    );

    // 2. A synthetic GloVe-like corpus and the paper's query/gold pairs
    //    (query word whose nearest neighbor has cosine >= 0.6).
    let corpus = SyntheticCorpus::builder()
        .vocab_size(500)
        .dim(32)
        .num_topics(20)
        .generate(&mut rng)?;
    let queries = querygen::generate(
        &corpus,
        QueryGenConfig {
            num_queries: 10,
            min_cosine: 0.6,
        },
        &mut rng,
    )?;
    let pair = queries.pairs()[0];
    println!(
        "query word {} -> gold document {} (cosine {:.3})",
        pair.query, pair.gold, pair.cosine
    );

    // 3. Place 1 gold + 9 irrelevant documents uniformly at random.
    let mut words = vec![pair.gold];
    words.extend(queries.irrelevant().iter().copied().take(9));
    let placement = Placement::uniform(&graph, &words, &mut rng)?;
    let gold_host = placement.host(0);
    println!("gold document hosted at {gold_host}");

    // 4. Build the serving engine: personalization vectors + PPR
    //    diffusion, wrapped in the admission/batching/caching layer.
    let scheme = SchemeConfig::builder().alpha(0.5).ttl(50).build()?;
    let engine_config = EngineConfig::builder().scheme(scheme).build()?;
    let engine = QueryEngine::build(&graph, &corpus, &placement, engine_config, &mut rng)?;
    println!(
        "diffused {}-dimensional embeddings over {} nodes (alpha = {})",
        engine.network().dim(),
        graph.num_nodes(),
        engine.network().config().alpha()
    );

    // 5. Query from a node a few hops away from the gold host. The
    //    engine's first execution of this query class computes and caches
    //    its score column; repeats would be cache hits.
    let rings = bfs::distance_rings(&graph, gold_host, 3);
    let start = rings[3].first().copied().unwrap_or(gold_host);
    let request = QueryRequest::new(corpus.embedding(pair.query).clone(), start, 7);
    let response = engine.execute(request)?;
    let outcome = &response.outcome;
    println!(
        "walk from {start} (distance 3): visited {} nodes with {} forwards (cache: {:?})",
        outcome.unique_nodes, outcome.hops, response.verdict
    );
    match outcome.hop_of(0) {
        Some(hop) => println!("SUCCESS: gold document found after {hop} hops"),
        None => println!("MISS: gold document not found within the TTL"),
    }
    for found in &outcome.results {
        println!(
            "  result: doc {} (word {}) score {:.3} at hop {}",
            found.doc,
            placement.word(found.doc),
            found.score,
            found.hop
        );
    }
    Ok(())
}
