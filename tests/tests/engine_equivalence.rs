//! ISSUE 10 determinism contract: the serving engine's batched, threaded,
//! cached execution must be **bitwise identical** to the sequential
//! uncached [`SearchNetwork::query`] path, for every combination of batch
//! window, worker-thread count, and cache capacity.
//!
//! The engine earns this by construction — cached score columns are
//! computed with the same `dot` kernel the inline walk uses, every
//! request carries its own walk seed, and `workpool` sharding preserves
//! submission order — so these tests pin the invariant against future
//! drift: a "faster" cache that re-derives scores with a fused or
//! reordered kernel, batch-local RNG reuse, or an order-sensitive
//! dispatch would all fail here.

use gdsearch::engine::{CacheCapacity, EngineConfig, QueryEngine, QueryRequest};
use gdsearch::walk::WalkOutcome;
use gdsearch::{CacheVerdict, Placement, SchemeConfig, SearchNetwork};
use gdsearch_embed::querygen::{self, QueryGenConfig};
use gdsearch_embed::synthetic::SyntheticCorpus;
use gdsearch_embed::Corpus;
use gdsearch_graph::{generators, Graph, NodeId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Fixed substrate shared by every case: the contract quantifies over
/// engine knobs, not over the network.
struct Fixture {
    graph: Graph,
    corpus: Corpus,
    queries: querygen::QuerySet,
}

fn fixture() -> Fixture {
    let graph = generators::social_circles_like_scaled(150, &mut rng(3)).unwrap();
    let corpus = SyntheticCorpus::builder()
        .vocab_size(300)
        .dim(24)
        .num_topics(10)
        .generate(&mut rng(4))
        .unwrap();
    let queries = querygen::generate(
        &corpus,
        QueryGenConfig {
            num_queries: 6,
            min_cosine: 0.5,
        },
        &mut rng(5),
    )
    .unwrap();
    Fixture {
        graph,
        corpus,
        queries,
    }
}

fn network(fx: &Fixture) -> SearchNetwork<'_> {
    let mut words: Vec<_> = fx.queries.pairs().iter().map(|p| p.gold).collect();
    words.extend(fx.queries.irrelevant().iter().copied().take(12));
    let placement = Placement::uniform(&fx.graph, &words, &mut rng(7)).unwrap();
    let config = SchemeConfig::builder()
        .ttl(12)
        .fanout(2)
        .top_k(5)
        .build()
        .unwrap();
    SearchNetwork::build(&fx.graph, &fx.corpus, &placement, &config, &mut rng(8)).unwrap()
}

/// A request mix that repeats queries (so caches and batch dedup
/// actually engage) while varying starts and walk seeds per request.
fn requests(fx: &Fixture, count: usize, seed: u64) -> Vec<QueryRequest> {
    let mut r = rng(seed);
    (0..count)
        .map(|_| {
            let pair = fx.queries.pairs()[r.random_range(0..fx.queries.len())];
            let start = NodeId::new(r.random_range(0..fx.graph.num_nodes() as u32));
            let walk_seed: u64 = r.random();
            QueryRequest::new(fx.corpus.embedding(pair.query).clone(), start, walk_seed)
        })
        .collect()
}

/// The ground truth: sequential, uncached, one fresh seeded RNG per
/// request — exactly what `SearchNetwork::query` did before the engine
/// existed.
fn sequential_baseline(net: &SearchNetwork<'_>, reqs: &[QueryRequest]) -> Vec<WalkOutcome> {
    reqs.iter()
        .map(|req| {
            let mut walk_rng = StdRng::seed_from_u64(req.seed());
            net.query(req.query(), req.start(), &mut walk_rng).unwrap()
        })
        .collect()
}

/// Drives `reqs` through submit/step and returns outcomes in admission
/// order.
fn engine_outcomes(engine: &QueryEngine<'_>, reqs: &[QueryRequest]) -> Vec<WalkOutcome> {
    for req in reqs {
        engine.submit(req.clone()).unwrap();
    }
    let mut outcomes = Vec::with_capacity(reqs.len());
    while outcomes.len() < reqs.len() {
        let batch = engine.step().unwrap();
        assert!(!batch.is_empty(), "queue drained before all responses");
        outcomes.extend(batch.into_iter().map(|resp| resp.outcome));
    }
    outcomes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For every (batch, threads, capacity) the engine's responses are
    /// bitwise equal to the sequential baseline, in admission order.
    #[test]
    fn engine_is_bitwise_equal_to_sequential_walks(
        batch_index in 0usize..3,
        thread_index in 0usize..3,
        capacity_index in 0usize..3,
        mix_seed in 0u64..1_000,
    ) {
        let batch_size = [1usize, 4, 16][batch_index];
        let threads = [1usize, 2, 4][thread_index];
        let capacity = [
            CacheCapacity::Bounded(0),
            CacheCapacity::Bounded(8),
            CacheCapacity::Unbounded,
        ][capacity_index];
        let fx = fixture();
        let net = network(&fx);
        let reqs = requests(&fx, 24, 0xE0_0000 + mix_seed);
        let expected = sequential_baseline(&net, &reqs);
        let config = EngineConfig::builder()
            .scheme(net.config().clone())
            .batch_size(batch_size)
            .threads(threads)
            .cache_capacity(capacity)
            .build()
            .unwrap();
        let engine = QueryEngine::from_network(net.clone(), config);
        let outcomes = engine_outcomes(&engine, &reqs);
        prop_assert_eq!(
            &outcomes, &expected,
            "batch {} / threads {} / capacity {:?}: engine output diverged",
            batch_size, threads, capacity
        );
        // Run the same mix again on the now-warm engine: a populated
        // cache must not change a single bit either.
        let again = engine_outcomes(&engine, &reqs);
        prop_assert_eq!(&again, &expected, "warm-cache replay diverged");
    }
}

/// Invalidation regression: dropping a cached column forces a
/// recomputation (Miss verdict) whose result is still bitwise identical,
/// and never disturbs other cached classes.
#[test]
fn invalidation_recomputes_identical_columns() {
    let fx = fixture();
    let net = network(&fx);
    let config = EngineConfig::builder()
        .scheme(net.config().clone())
        .cache_capacity(CacheCapacity::Bounded(8))
        .build()
        .unwrap();
    let engine = QueryEngine::from_network(net, config);

    let pair_a = fx.queries.pairs()[0];
    let pair_b = fx.queries.pairs()[1];
    let make = |word, start: u32, seed: u64| {
        QueryRequest::new(fx.corpus.embedding(word).clone(), NodeId::new(start), seed)
    };

    let cold = engine.execute(make(pair_a.query, 3, 41)).unwrap();
    assert_eq!(cold.verdict, CacheVerdict::Miss);
    let other = engine.execute(make(pair_b.query, 9, 42)).unwrap();
    assert_eq!(other.verdict, CacheVerdict::Miss);

    let warm = engine.execute(make(pair_a.query, 3, 41)).unwrap();
    assert_eq!(warm.verdict, CacheVerdict::Hit);
    assert_eq!(warm.outcome, cold.outcome, "cache hit changed the walk");

    // Drop A's column only.
    let class_a = QueryRequest::class_of(fx.corpus.embedding(pair_a.query));
    engine.invalidate(class_a);

    let recomputed = engine.execute(make(pair_a.query, 3, 41)).unwrap();
    assert_eq!(
        recomputed.verdict,
        CacheVerdict::Miss,
        "invalidated class must be recomputed"
    );
    assert_eq!(
        recomputed.outcome, cold.outcome,
        "recomputed column changed the walk"
    );
    // B survived the targeted invalidation.
    let b_again = engine.execute(make(pair_b.query, 9, 42)).unwrap();
    assert_eq!(b_again.verdict, CacheVerdict::Hit);
    assert_eq!(b_again.outcome, other.outcome);

    assert_eq!(engine.stats().cache.invalidations, 1);
}

/// `invalidate_all` after a placement-level change forces every class
/// through recomputation while leaving results bitwise stable.
#[test]
fn invalidate_all_flushes_every_class() {
    let fx = fixture();
    let net = network(&fx);
    let config = EngineConfig::builder()
        .scheme(net.config().clone())
        .cache_capacity(CacheCapacity::Unbounded)
        .build()
        .unwrap();
    let engine = QueryEngine::from_network(net, config);
    let reqs = requests(&fx, 8, 0xF100);
    let first: Vec<_> = reqs
        .iter()
        .map(|r| engine.execute(r.clone()).unwrap())
        .collect();
    engine.invalidate_all();
    // The mix repeats query classes: after the flush, the first request
    // of each class recomputes (Miss) and re-primes the cache, so later
    // repeats hit again.
    let mut recomputed = std::collections::BTreeSet::new();
    for (req, before) in reqs.iter().zip(&first) {
        let class = req.class().unwrap();
        let after = engine.execute(req.clone()).unwrap();
        let expected = if recomputed.insert(class) {
            CacheVerdict::Miss
        } else {
            CacheVerdict::Hit
        };
        assert_eq!(after.verdict, expected, "flush must force recomputation");
        assert_eq!(after.outcome, before.outcome);
    }
}
