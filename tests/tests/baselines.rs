//! Baseline sanity at system level: flooding is exhaustive within its TTL
//! ball, guided walks beat blind walks in aggregate, and the visited-memory
//! ablation behaves as documented.

use gdsearch::{Placement, PolicyKind, SchemeConfig, SearchNetwork, VisitedMemory};
use gdsearch_embed::querygen::{self, QueryGenConfig};
use gdsearch_embed::synthetic::SyntheticCorpus;
use gdsearch_embed::Corpus;
use gdsearch_graph::algo::bfs;
use gdsearch_graph::{generators, Graph, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

fn environment(seed: u64) -> (Graph, Corpus) {
    let mut r = rng(seed);
    let graph = generators::social_circles_like_scaled(150, &mut r).unwrap();
    let corpus = SyntheticCorpus::builder()
        .vocab_size(400)
        .dim(24)
        .num_topics(15)
        .generate(&mut r)
        .unwrap();
    (graph, corpus)
}

#[test]
fn flooding_finds_gold_iff_within_ttl_ball() {
    let (graph, corpus) = environment(1);
    let words = vec![gdsearch_embed::WordId::new(3)];
    let placement = Placement::uniform(&graph, &words, &mut rng(2)).unwrap();
    let gold_host = placement.host(0);
    let ttl = 2u32;
    let cfg = SchemeConfig::builder()
        .policy(PolicyKind::Flooding)
        .ttl(ttl)
        .build()
        .unwrap();
    let net = SearchNetwork::build(&graph, &corpus, &placement, &cfg, &mut rng(3)).unwrap();
    let query = corpus.embedding(gdsearch_embed::WordId::new(7));
    let distances = bfs::distances(&graph, gold_host);
    for start_idx in (0..150).step_by(17) {
        let start = NodeId::new(start_idx);
        let out = net.query(query, start, &mut rng(4)).unwrap();
        let within = distances[start.index()].map(|d| d <= ttl).unwrap_or(false);
        assert_eq!(
            out.contains(0),
            within,
            "flooding from {start}: gold at distance {:?}, ttl {ttl}",
            distances[start.index()]
        );
    }
}

#[test]
fn flooding_message_cost_dwarfs_single_walk() {
    let (graph, corpus) = environment(5);
    let words = vec![gdsearch_embed::WordId::new(3)];
    let placement = Placement::uniform(&graph, &words, &mut rng(6)).unwrap();
    let query = corpus.embedding(gdsearch_embed::WordId::new(8));
    let start = NodeId::new(0);
    let run_policy = |policy: PolicyKind, ttl: u32| {
        let cfg = SchemeConfig::builder()
            .policy(policy)
            .ttl(ttl)
            .build()
            .unwrap();
        let net = SearchNetwork::build(&graph, &corpus, &placement, &cfg, &mut rng(7)).unwrap();
        net.query(query, start, &mut rng(8)).unwrap().hops
    };
    let flood_msgs = run_policy(PolicyKind::Flooding, 3);
    let walk_msgs = run_policy(PolicyKind::PprGreedy, 50);
    assert!(
        flood_msgs > 4 * walk_msgs,
        "flooding ({flood_msgs}) should cost far more than a walk ({walk_msgs})"
    );
}

#[test]
fn guided_beats_blind_in_aggregate() {
    let (graph, corpus) = environment(9);
    let queries = querygen::generate(
        &corpus,
        QueryGenConfig {
            num_queries: 15,
            min_cosine: 0.6,
        },
        &mut rng(10),
    )
    .unwrap();
    assert!(queries.len() >= 8);
    let ttl = 20u32;
    let mut guided = 0usize;
    let mut blind = 0usize;
    for (i, pair) in queries.pairs().iter().enumerate() {
        let mut words = vec![pair.gold];
        words.extend(queries.irrelevant().iter().copied().take(19));
        let placement = Placement::uniform(&graph, &words, &mut rng(20 + i as u64)).unwrap();
        let query = corpus.embedding(pair.query);
        for (policy, counter) in [
            (PolicyKind::PprGreedy, &mut guided),
            (PolicyKind::RandomWalk, &mut blind),
        ] {
            let cfg = SchemeConfig::builder()
                .policy(policy)
                .ttl(ttl)
                .build()
                .unwrap();
            let net =
                SearchNetwork::build(&graph, &corpus, &placement, &cfg, &mut rng(40)).unwrap();
            // Three starts per placement for more samples.
            for s in [5u32, 60, 110] {
                let out = net
                    .query(query, NodeId::new(s), &mut rng(50 + i as u64))
                    .unwrap();
                if out.contains(0) {
                    *counter += 1;
                }
            }
        }
    }
    assert!(
        guided > blind,
        "PPR-guided hits ({guided}) must exceed blind hits ({blind})"
    );
}

#[test]
fn in_message_memory_is_at_least_as_exploratory() {
    // The paper rejects in-message visited sets for privacy, noting they
    // are "slightly more efficient". Check the mechanism: with in-message
    // memory a walk never revisits until forced, so it covers at least as
    // many unique nodes as the node-memory walk on the same inputs.
    let (graph, corpus) = environment(11);
    let words = vec![gdsearch_embed::WordId::new(2)];
    let placement = Placement::uniform(&graph, &words, &mut rng(12)).unwrap();
    let query = corpus.embedding(gdsearch_embed::WordId::new(6));
    let run_mode = |memory: VisitedMemory| {
        let cfg = SchemeConfig::builder()
            .visited_memory(memory)
            .ttl(40)
            .build()
            .unwrap();
        let net = SearchNetwork::build(&graph, &corpus, &placement, &cfg, &mut rng(13)).unwrap();
        net.query(query, NodeId::new(0), &mut rng(14))
            .unwrap()
            .unique_nodes
    };
    let node_memory = run_mode(VisitedMemory::NodeMemory);
    let in_message = run_mode(VisitedMemory::InMessage);
    assert!(
        in_message >= node_memory,
        "in-message memory ({in_message}) should cover >= node memory ({node_memory})"
    );
}

#[test]
fn degree_biased_walk_reaches_hubs_quickly() {
    let (graph, corpus) = environment(15);
    let words = vec![gdsearch_embed::WordId::new(1)];
    let placement = Placement::uniform(&graph, &words, &mut rng(16)).unwrap();
    let cfg = SchemeConfig::builder()
        .policy(PolicyKind::DegreeBiased)
        .ttl(5)
        .build()
        .unwrap();
    let net = SearchNetwork::build(&graph, &corpus, &placement, &cfg, &mut rng(17)).unwrap();
    let query = corpus.embedding(gdsearch_embed::WordId::new(4));
    let out = net.query(query, NodeId::new(100), &mut rng(18)).unwrap();
    // The second visited node must be the start's highest-degree neighbor.
    let start_neighbors = graph.neighbor_slice(NodeId::new(100));
    let best = start_neighbors
        .iter()
        .copied()
        .max_by_key(|&v| (graph.degree(v), std::cmp::Reverse(v.as_u32())))
        .unwrap();
    assert_eq!(out.path[1], best);
}
