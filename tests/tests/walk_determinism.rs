//! Regression tests for ISSUE 6's walk determinism hazard.
//!
//! `core::walk` used `HashMap`/`HashSet` for `found_at`, `seen_nodes`,
//! and the per-node visited memory. `std` hash collections draw a fresh
//! hasher seed per collection instance (and per process), so any latent
//! iteration-order dependence would make walk output differ between two
//! otherwise-identical runs. The collections are now `BTreeMap`/
//! `BTreeSet`; these tests pin the observable invariant — **identical
//! walk output across independently constructed runs** — so a future
//! reintroduction of order-sensitive state fails here (and in the
//! `gdsearch-analysis` determinism rule) rather than in production.
//!
//! Each "run" rebuilds the network and every collection from scratch,
//! which under `RandomState` means fresh hasher seeds: this in-process
//! repetition is exactly what distinguished two OS processes before the
//! fix.

use gdsearch::{walk, Placement, PolicyKind, SchemeConfig, SearchNetwork, VisitedMemory};
use gdsearch_embed::querygen::{self, QueryGenConfig};
use gdsearch_embed::synthetic::SyntheticCorpus;
use gdsearch_embed::Corpus;
use gdsearch_graph::{generators, Graph, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

fn corpus(seed: u64) -> Corpus {
    SyntheticCorpus::builder()
        .vocab_size(300)
        .dim(24)
        .num_topics(10)
        .generate(&mut rng(seed))
        .unwrap()
}

/// One complete, freshly-constructed walk execution.
fn run_once(
    graph: &Graph,
    corpus: &Corpus,
    config: &SchemeConfig,
    query_seed: u64,
) -> Vec<walk::WalkOutcome> {
    let queries = querygen::generate(
        corpus,
        QueryGenConfig {
            num_queries: 6,
            min_cosine: 0.5,
        },
        &mut rng(query_seed),
    )
    .unwrap();
    let mut words: Vec<_> = queries.pairs().iter().map(|p| p.gold).collect();
    words.extend(queries.irrelevant().iter().copied().take(12));
    let placement = Placement::uniform(graph, &words, &mut rng(7)).unwrap();
    let network = SearchNetwork::build(graph, corpus, &placement, config, &mut rng(8)).unwrap();
    queries
        .pairs()
        .iter()
        .enumerate()
        .map(|(qi, pair)| {
            let start = NodeId::new((qi * 17 % graph.num_nodes()) as u32);
            walk::run(
                &network,
                corpus.embedding(pair.query),
                start,
                &mut rng(1000 + qi as u64),
            )
            .unwrap()
        })
        .collect()
}

fn assert_replays_identically(policy: PolicyKind, memory: VisitedMemory) {
    let graph = generators::social_circles_like_scaled(150, &mut rng(3)).unwrap();
    let corpus = corpus(4);
    let config = SchemeConfig::builder()
        .policy(policy)
        .visited_memory(memory)
        .ttl(8)
        .fanout(2)
        .top_k(5)
        .build()
        .unwrap();
    let first = run_once(&graph, &corpus, &config, 99);
    for repeat in 0..3 {
        let again = run_once(&graph, &corpus, &config, 99);
        assert_eq!(
            first, again,
            "{policy:?}/{memory:?} walk output changed between identical runs \
             (repeat {repeat}): results, paths, and hop counts must be bit-stable"
        );
    }
}

#[test]
fn greedy_walks_replay_identically_with_node_memory() {
    assert_replays_identically(PolicyKind::PprGreedy, VisitedMemory::NodeMemory);
}

#[test]
fn greedy_walks_replay_identically_with_in_message_memory() {
    assert_replays_identically(PolicyKind::PprGreedy, VisitedMemory::InMessage);
}

#[test]
fn random_walks_replay_identically() {
    // RandomWalk consumes the seeded RNG at every hop: any hidden
    // iteration-order dependence would desynchronize the RNG stream and
    // diverge the whole trajectory, making this the most sensitive probe.
    assert_replays_identically(PolicyKind::RandomWalk, VisitedMemory::NodeMemory);
}

#[test]
fn flooding_replays_identically() {
    assert_replays_identically(PolicyKind::Flooding, VisitedMemory::NodeMemory);
}
