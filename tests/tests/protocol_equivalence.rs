//! Equivalence of the two protocol implementations: the in-process fast
//! path (`gdsearch::walk`) and the message-passing version on the
//! discrete-event simulator (`gdsearch::protocol`). For the deterministic
//! greedy policy with a single walk, both must visit the same nodes and
//! retrieve the same documents at the same hops.

use gdsearch::protocol::{build_protocol_network, issue_query, run_and_collect};
use gdsearch::{Placement, SchemeConfig, SearchNetwork};
use gdsearch_embed::querygen::{self, QueryGenConfig};
use gdsearch_embed::synthetic::SyntheticCorpus;
use gdsearch_embed::Corpus;
use gdsearch_graph::{generators, Graph, NodeId};
use gdsearch_sim::NetworkConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

fn environment(seed: u64) -> (Graph, Corpus) {
    let mut r = rng(seed);
    let graph = generators::social_circles_like_scaled(120, &mut r).unwrap();
    let corpus = SyntheticCorpus::builder()
        .vocab_size(300)
        .dim(24)
        .num_topics(12)
        .generate(&mut r)
        .unwrap();
    (graph, corpus)
}

#[test]
fn greedy_walk_and_protocol_agree_on_results() {
    let (graph, corpus) = environment(1);
    let queries = querygen::generate(
        &corpus,
        QueryGenConfig {
            num_queries: 6,
            min_cosine: 0.6,
        },
        &mut rng(2),
    )
    .unwrap();
    assert!(!queries.is_empty());

    for (i, pair) in queries.pairs().iter().enumerate() {
        let mut words = vec![pair.gold];
        words.extend(queries.irrelevant().iter().copied().take(7));
        let placement = Placement::uniform(&graph, &words, &mut rng(10 + i as u64)).unwrap();
        let cfg = SchemeConfig::builder().ttl(15).top_k(2).build().unwrap();
        let scheme = SearchNetwork::build(&graph, &corpus, &placement, &cfg, &mut rng(20)).unwrap();
        let start = NodeId::new((i as u32 * 31) % 120);
        let query = corpus.embedding(pair.query);

        // Fast path.
        let walk = scheme.query(query, start, &mut rng(30)).unwrap();

        // Simulated protocol.
        let mut net = build_protocol_network(&scheme, NetworkConfig::default()).unwrap();
        issue_query(&mut net, start, i as u64, query.clone(), 15).unwrap();
        let completed = run_and_collect(&mut net, start, 1_000_000).unwrap();
        assert_eq!(completed.len(), 1, "query {i} did not complete");

        // Same success and, on success, the same hop for the gold doc.
        let walk_gold = walk.hop_of(0);
        let proto_gold = completed[0]
            .results
            .iter()
            .find(|(d, _, _)| *d == 0)
            .map(|(_, _, h)| *h);
        assert_eq!(
            walk_gold, proto_gold,
            "query {i}: walk and protocol disagree on the gold outcome"
        );

        // Same result sets (doc ids and hops; scores are identical floats).
        let mut walk_docs: Vec<(usize, u32)> =
            walk.results.iter().map(|f| (f.doc, f.hop)).collect();
        let mut proto_docs: Vec<(usize, u32)> = completed[0]
            .results
            .iter()
            .map(|(d, _, h)| (*d, *h))
            .collect();
        walk_docs.sort_unstable();
        proto_docs.sort_unstable();
        assert_eq!(walk_docs, proto_docs, "query {i}: result sets differ");
    }
}

#[test]
fn protocol_message_count_matches_walk_forwards() {
    // Single greedy walk: the protocol sends exactly one query message per
    // forward plus one response message per relay on the way back.
    let (graph, corpus) = environment(3);
    let words = vec![gdsearch_embed::WordId::new(5)];
    let placement = Placement::uniform(&graph, &words, &mut rng(4)).unwrap();
    let ttl = 10;
    let cfg = SchemeConfig::builder().ttl(ttl).build().unwrap();
    let scheme = SearchNetwork::build(&graph, &corpus, &placement, &cfg, &mut rng(5)).unwrap();
    let start = NodeId::new(0);
    let query = corpus.embedding(gdsearch_embed::WordId::new(9));

    let walk = scheme.query(query, start, &mut rng(6)).unwrap();
    let mut net = build_protocol_network(&scheme, NetworkConfig::default()).unwrap();
    issue_query(&mut net, start, 0, query.clone(), ttl).unwrap();
    run_and_collect(&mut net, start, 1_000_000).unwrap();

    // Forward messages = walk.hops; responses = walk.hops (chain
    // backtracking), so transport sent = 2 * forwards.
    assert_eq!(net.stats().sent, 2 * u64::from(walk.hops));
}

#[test]
fn fanout_protocol_still_terminates_and_merges() {
    let (graph, corpus) = environment(7);
    let words: Vec<_> = (0..10).map(gdsearch_embed::WordId::new).collect();
    let placement = Placement::uniform(&graph, &words, &mut rng(8)).unwrap();
    let cfg = SchemeConfig::builder()
        .ttl(4)
        .fanout(3)
        .top_k(5)
        .build()
        .unwrap();
    let scheme = SearchNetwork::build(&graph, &corpus, &placement, &cfg, &mut rng(9)).unwrap();
    let start = NodeId::new(60);
    let query = corpus.embedding(gdsearch_embed::WordId::new(20));

    let mut net = build_protocol_network(&scheme, NetworkConfig::default()).unwrap();
    issue_query(&mut net, start, 42, query.clone(), 4).unwrap();
    let completed = run_and_collect(&mut net, start, 1_000_000).unwrap();
    assert_eq!(completed.len(), 1);
    assert_eq!(completed[0].query_id, 42);
    assert!(completed[0].results.len() <= 5);
    // Three origin walks of TTL 4: at most 12 query messages, each
    // answered once.
    assert!(net.stats().sent <= 2 * 12);
}
