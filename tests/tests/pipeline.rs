//! End-to-end integration tests of the full search pipeline:
//! graph generation → corpus → query generation → placement →
//! personalization → diffusion → guided walk.

use gdsearch::experiment::{accuracy, hops, Workbench, WorkbenchSpec};
use gdsearch::{DiffusionEngine, Placement, SchemeConfig, SearchNetwork};
use gdsearch_embed::querygen::{self, QueryGenConfig};
use gdsearch_embed::synthetic::SyntheticCorpus;
use gdsearch_graph::algo::bfs;
use gdsearch_graph::generators;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// The `examples/quickstart.rs` flow as a fast workspace smoke test:
/// build graph → corpus → query pairs → placement → diffusion → guided
/// walk → hit. Any regression in the end-to-end pipeline (or in seeded
/// determinism of any stage) fails here first.
#[test]
fn quickstart_smoke() {
    let mut rng = rng(42);
    let graph = generators::social_circles_like_scaled(200, &mut rng).unwrap();
    assert_eq!(graph.num_nodes(), 200);
    assert!(graph.num_edges() > 0, "overlay must be non-trivial");

    let corpus = SyntheticCorpus::builder()
        .vocab_size(500)
        .dim(32)
        .num_topics(20)
        .generate(&mut rng)
        .unwrap();
    let queries = querygen::generate(
        &corpus,
        QueryGenConfig {
            num_queries: 10,
            min_cosine: 0.6,
        },
        &mut rng,
    )
    .unwrap();
    let pair = queries.pairs()[0];
    assert!(pair.cosine >= 0.6, "gold must be a near neighbor");

    let mut words = vec![pair.gold];
    words.extend(queries.irrelevant().iter().copied().take(9));
    let placement = Placement::uniform(&graph, &words, &mut rng).unwrap();
    let gold_host = placement.host(0);

    let config = SchemeConfig::builder().alpha(0.5).ttl(50).build().unwrap();
    let network = SearchNetwork::build(&graph, &corpus, &placement, &config, &mut rng).unwrap();
    assert_eq!(network.dim(), 32);

    let rings = bfs::distance_rings(&graph, gold_host, 3);
    let start = rings[3].first().copied().unwrap_or(gold_host);
    let outcome = network
        .query(corpus.embedding(pair.query), start, &mut rng)
        .unwrap();
    assert!(outcome.unique_nodes > 0);
    assert!(
        outcome.hops <= 50,
        "a single walk spends at most TTL forwards"
    );
    let hop = outcome
        .hop_of(0)
        .expect("quickstart's seeded walk must find the gold document");
    assert!(
        outcome.path.contains(&gold_host),
        "a hit implies the gold host was visited"
    );
    assert!(hop as usize >= 3, "gold at BFS distance 3 needs >= 3 hops");
}

fn workbench(seed: u64) -> Workbench {
    Workbench::generate(&WorkbenchSpec::ci_scale(), &mut rng(seed)).unwrap()
}

#[test]
fn full_pipeline_is_deterministic_under_seed() {
    let run_once = || {
        let wb = workbench(11);
        let cfg = accuracy::AccuracyConfig {
            total_docs: 8,
            alphas: vec![0.5],
            max_distance: 4,
            iterations: 5,
        };
        accuracy::run(&wb, &cfg, &SchemeConfig::default(), &mut rng(12)).unwrap()
    };
    assert_eq!(run_once(), run_once());
}

#[test]
fn accuracy_at_distance_zero_and_one_is_high_with_few_documents() {
    // Fig. 3a's left edge: with 10 documents, queries at distance 0-1 from
    // the gold host almost always succeed.
    let wb = workbench(21);
    let cfg = accuracy::AccuracyConfig {
        total_docs: 10,
        alphas: vec![0.5],
        max_distance: 3,
        iterations: 20,
    };
    let result = accuracy::run(&wb, &cfg, &SchemeConfig::default(), &mut rng(22)).unwrap();
    let s = &result.series[0];
    assert_eq!(s.accuracy[0], 1.0, "distance 0 is a local hit");
    assert!(
        s.accuracy[1] >= 0.9,
        "distance 1 should be nearly always found: {}",
        s.accuracy[1]
    );
}

#[test]
fn accuracy_declines_as_documents_increase() {
    // The paper's scalability headline: more stored documents = noisier
    // diffusion = lower accuracy. Compare few vs many documents at mid
    // distances on the same workbench.
    let wb = workbench(31);
    let run_with_docs = |docs: usize, seed: u64| {
        let cfg = accuracy::AccuracyConfig {
            total_docs: docs,
            alphas: vec![0.5],
            max_distance: 4,
            iterations: 20,
        };
        let result = accuracy::run(&wb, &cfg, &SchemeConfig::default(), &mut rng(seed)).unwrap();
        // Aggregate accuracy at distances 2..=4.
        let s = &result.series[0];
        (2..=4).map(|d| s.accuracy[d]).sum::<f64>() / 3.0
    };
    let few = run_with_docs(5, 32);
    let many = run_with_docs(200, 32);
    assert!(
        few >= many,
        "accuracy with 5 docs ({few:.3}) must be >= accuracy with 200 docs ({many:.3})"
    );
}

#[test]
fn hop_experiment_matches_walk_semantics() {
    // Sanity link between the two harnesses: hop counts reported by the
    // Table I harness are achievable within the TTL.
    let wb = workbench(41);
    let base = SchemeConfig::builder().ttl(12).build().unwrap();
    let cfg = hops::HopCountConfig {
        total_docs: 5,
        iterations: 10,
        queries_per_iteration: 5,
    };
    let row = hops::run(&wb, &cfg, &base, &mut rng(42)).unwrap();
    assert_eq!(row.samples, 50);
    if let Some(mean) = row.mean_hops {
        assert!(mean <= 12.0, "mean hops {mean} cannot exceed the TTL");
    }
}

#[test]
fn all_engines_yield_equivalent_search_outcomes() {
    // Whole-system equivalence: the same placement diffused by different
    // engines must produce identical greedy walks.
    let wb = workbench(51);
    let words: Vec<_> = std::iter::once(wb.queries.pairs()[0].gold)
        .chain(wb.queries.irrelevant().iter().copied().take(9))
        .collect();
    let placement = Placement::uniform(&wb.graph, &words, &mut rng(52)).unwrap();
    let query = wb.corpus.embedding(wb.queries.pairs()[0].query);
    let start = gdsearch_graph::NodeId::new(3);

    let mut paths = Vec::new();
    for engine in [
        DiffusionEngine::dense(2),
        DiffusionEngine::PerSource,
        DiffusionEngine::Auto,
        DiffusionEngine::push(2),
        DiffusionEngine::sharded(3, 2),
    ] {
        let cfg = SchemeConfig::builder()
            .engine(engine)
            .ttl(20)
            .tolerance(1e-7)
            .build()
            .unwrap();
        let net =
            SearchNetwork::build(&wb.graph, &wb.corpus, &placement, &cfg, &mut rng(53)).unwrap();
        let outcome = net.query(query, start, &mut rng(54)).unwrap();
        paths.push(outcome.path);
    }
    assert_eq!(paths[0], paths[1], "dense vs per-source walks diverged");
    assert_eq!(paths[0], paths[2], "dense vs auto walks diverged");
    assert_eq!(paths[0], paths[3], "dense vs push walks diverged");
    assert_eq!(paths[0], paths[4], "dense vs sharded walks diverged");
}

#[test]
fn walk_succeeds_exactly_when_it_visits_the_gold_host() {
    let wb = workbench(61);
    let words: Vec<_> = std::iter::once(wb.queries.pairs()[0].gold)
        .chain(wb.queries.irrelevant().iter().copied().take(4))
        .collect();
    let placement = Placement::uniform(&wb.graph, &words, &mut rng(62)).unwrap();
    let net = SearchNetwork::build(
        &wb.graph,
        &wb.corpus,
        &placement,
        &SchemeConfig::default(),
        &mut rng(63),
    )
    .unwrap();
    let query = wb.corpus.embedding(wb.queries.pairs()[0].query);
    for start_idx in [0u32, 50, 120] {
        let start = gdsearch_graph::NodeId::new(start_idx);
        let outcome = net.query(query, start, &mut rng(64)).unwrap();
        let visited_host = outcome.path.contains(&placement.host(0));
        assert_eq!(
            outcome.contains(0),
            visited_host,
            "success must coincide with visiting the gold host"
        );
    }
}

#[test]
fn distance_rings_drive_expected_hop_lower_bound() {
    // A query issued at BFS distance d cannot find the gold in fewer than
    // d hops.
    let wb = workbench(71);
    let words: Vec<_> = std::iter::once(wb.queries.pairs()[0].gold)
        .chain(wb.queries.irrelevant().iter().copied().take(9))
        .collect();
    let placement = Placement::uniform(&wb.graph, &words, &mut rng(72)).unwrap();
    let net = SearchNetwork::build(
        &wb.graph,
        &wb.corpus,
        &placement,
        &SchemeConfig::default(),
        &mut rng(73),
    )
    .unwrap();
    let query = wb.corpus.embedding(wb.queries.pairs()[0].query);
    let rings = bfs::distance_rings(&wb.graph, placement.host(0), 4);
    for (d, ring) in rings.iter().enumerate() {
        if let Some(&start) = ring.first() {
            let outcome = net.query(query, start, &mut rng(74)).unwrap();
            if let Some(hop) = outcome.hop_of(0) {
                assert!(
                    hop as usize >= d,
                    "hop {hop} below BFS distance {d} is impossible"
                );
            }
        }
    }
}
