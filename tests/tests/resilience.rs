//! Failure-injection integration tests: the full protocol under message
//! loss, latency jitter and node churn. The scheme must degrade gracefully
//! (fewer completions, consistent accounting) and never wedge or panic.

use gdsearch::protocol::{build_protocol_network, issue_query};
use gdsearch::{Placement, SchemeConfig, SearchNetwork};
use gdsearch_embed::synthetic::SyntheticCorpus;
use gdsearch_embed::WordId;
use gdsearch_graph::{generators, NodeId};
use gdsearch_sim::churn::ChurnSchedule;
use gdsearch_sim::{LatencyModel, NetworkConfig, SimTime};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Builds a 100-node search deployment with 20 documents.
fn deployment(seed: u64) -> (gdsearch_graph::Graph, gdsearch_embed::Corpus, Placement) {
    let mut r = rng(seed);
    let graph = generators::social_circles_like_scaled(100, &mut r).unwrap();
    let corpus = SyntheticCorpus::builder()
        .vocab_size(200)
        .dim(16)
        .num_topics(10)
        .generate(&mut r)
        .unwrap();
    let words: Vec<WordId> = (0..20).map(WordId::new).collect();
    let placement = Placement::uniform(&graph, &words, &mut r).unwrap();
    (graph, corpus, placement)
}

#[test]
fn accounting_is_consistent_under_loss() {
    let (graph, corpus, placement) = deployment(1);
    let cfg = SchemeConfig::builder().ttl(10).build().unwrap();
    let scheme = SearchNetwork::build(&graph, &corpus, &placement, &cfg, &mut rng(2)).unwrap();
    let sim_cfg = NetworkConfig::default()
        .with_loss_probability(0.3)
        .unwrap()
        .with_seed(3);
    let mut net = build_protocol_network(&scheme, sim_cfg).unwrap();
    for q in 0..10u64 {
        let origin = NodeId::new((q * 9 % 100) as u32);
        issue_query(
            &mut net,
            origin,
            q,
            corpus.embedding(WordId::new(50)).clone(),
            10,
        )
        .unwrap();
    }
    net.run_until(SimTime::new(1000.0).unwrap());
    let stats = net.stats();
    // Deliveries include the 10 injections; transported messages either
    // deliver, get lost, or hit a down node.
    assert_eq!(
        stats.sent + 10,
        stats.delivered + stats.lost + stats.dropped_down,
        "transport accounting must balance: {stats:?}"
    );
    assert!(stats.lost > 0, "30% loss must drop something");
}

#[test]
fn queries_complete_despite_partial_churn() {
    let (graph, corpus, placement) = deployment(4);
    let cfg = SchemeConfig::builder().ttl(15).build().unwrap();
    let scheme = SearchNetwork::build(&graph, &corpus, &placement, &cfg, &mut rng(5)).unwrap();
    let churn = ChurnSchedule::random_failures(100, 0.15, 4.0, 1.0, &mut rng(6)).unwrap();
    let sim_cfg = NetworkConfig::default()
        .with_latency(LatencyModel::uniform(0.01, 0.05).unwrap())
        .with_churn(churn)
        .with_seed(7);
    let mut net = build_protocol_network(&scheme, sim_cfg).unwrap();
    let origins: Vec<NodeId> = (0..15).map(|i| NodeId::new(i * 6)).collect();
    for (q, &origin) in origins.iter().enumerate() {
        issue_query(
            &mut net,
            origin,
            q as u64,
            corpus.embedding(WordId::new(40)).clone(),
            15,
        )
        .unwrap();
    }
    net.run_until(SimTime::new(300.0).unwrap());
    let completed: usize = origins
        .iter()
        .map(|&o| net.handler(o).unwrap().completed().len())
        .sum();
    // Churn may orphan some walks, but with 15% failures most complete.
    assert!(
        completed >= origins.len() / 2,
        "only {completed}/{} queries completed",
        origins.len()
    );
}

#[test]
fn zero_loss_zero_churn_completes_everything() {
    let (graph, corpus, placement) = deployment(8);
    let cfg = SchemeConfig::builder().ttl(12).build().unwrap();
    let scheme = SearchNetwork::build(&graph, &corpus, &placement, &cfg, &mut rng(9)).unwrap();
    let sim_cfg = NetworkConfig::default()
        .with_latency(LatencyModel::exponential(0.02).unwrap())
        .with_seed(10);
    let mut net = build_protocol_network(&scheme, sim_cfg).unwrap();
    let origins: Vec<NodeId> = (0..12).map(|i| NodeId::new(i * 8)).collect();
    for (q, &origin) in origins.iter().enumerate() {
        issue_query(
            &mut net,
            origin,
            q as u64,
            corpus.embedding(WordId::new(30)).clone(),
            12,
        )
        .unwrap();
    }
    net.run_to_completion(1_000_000).unwrap();
    for &origin in &origins {
        let completed = net.handler(origin).unwrap().completed();
        assert_eq!(
            completed.len(),
            origins.iter().filter(|&&o| o == origin).count(),
            "origin {origin} must complete each of its queries exactly once"
        );
    }
}

#[test]
fn stress_many_concurrent_queries() {
    // 100 concurrent queries over a lossy, jittery network: no panics, no
    // budget explosions, accounting stays balanced.
    let (graph, corpus, placement) = deployment(11);
    let cfg = SchemeConfig::builder().ttl(8).fanout(2).build().unwrap();
    let scheme = SearchNetwork::build(&graph, &corpus, &placement, &cfg, &mut rng(12)).unwrap();
    let sim_cfg = NetworkConfig::default()
        .with_latency(LatencyModel::exponential(0.05).unwrap())
        .with_loss_probability(0.05)
        .unwrap()
        .with_seed(13);
    let mut net = build_protocol_network(&scheme, sim_cfg).unwrap();
    for q in 0..100u64 {
        let origin = NodeId::new((q * 7 % 100) as u32);
        issue_query(
            &mut net,
            origin,
            q,
            corpus.embedding(WordId::new((q % 100) as u32)).clone(),
            8,
        )
        .unwrap();
    }
    net.run_until(SimTime::new(10_000.0).unwrap());
    let stats = net.stats();
    assert_eq!(
        stats.sent + 100,
        stats.delivered + stats.lost + stats.dropped_down
    );
}
