//! Cross-crate property-based tests: invariants that must hold for *any*
//! placement, graph and configuration, not just the curated fixtures.

use gdsearch::{Placement, PolicyKind, SchemeConfig, SearchNetwork};
use gdsearch_diffusion::{per_source, power, PprConfig, Signal};
use gdsearch_embed::synthetic::SyntheticCorpus;
use gdsearch_embed::{Corpus, WordId};
use gdsearch_graph::{generators, Graph, NodeId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Shared corpus for all property cases (generation is expensive).
fn corpus() -> &'static Corpus {
    use std::sync::OnceLock;
    static CORPUS: OnceLock<Corpus> = OnceLock::new();
    CORPUS.get_or_init(|| {
        SyntheticCorpus::builder()
            .vocab_size(150)
            .dim(12)
            .num_topics(8)
            .generate(&mut StdRng::seed_from_u64(99))
            .unwrap()
    })
}

fn graph_from_seed(seed: u64, n: u32) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    generators::random_connected(n, n / 2, &mut rng).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// PPR mass conservation holds on arbitrary connected graphs.
    #[test]
    fn ppr_conserves_mass(seed in 0u64..500, n in 5u32..60, alpha in 0.05f32..1.0) {
        let g = graph_from_seed(seed, n);
        let cfg = PprConfig::new(alpha).unwrap().with_tolerance(1e-7).unwrap();
        let h = per_source::ppr_vector(&g, NodeId::new(0), &cfg).unwrap();
        let total: f32 = h.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-3, "mass {total}");
        prop_assert!(h.iter().all(|&x| x >= -1e-6), "negative probability");
    }

    /// Dense and per-source diffusion agree on arbitrary inputs.
    #[test]
    fn engines_agree(seed in 0u64..500, n in 5u32..40, k in 1usize..6) {
        let g = graph_from_seed(seed, n);
        let cfg = PprConfig::new(0.4).unwrap().with_tolerance(1e-7).unwrap();
        let corpus = corpus();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xabcd);
        let sources: Vec<(NodeId, gdsearch_embed::Embedding)> = (0..k)
            .map(|i| {
                use rand::Rng as _;
                (
                    NodeId::new(rng.random_range(0..n)),
                    corpus.embedding(WordId::new(i as u32)).clone(),
                )
            })
            .collect();
        let sparse = per_source::diffuse_sparse(&g, corpus.dim(), &sources, &cfg).unwrap();
        let e0 = Signal::from_sparse_rows(n as usize, corpus.dim(), &sources).unwrap();
        let dense = power::diffuse(&g, &e0, &cfg).unwrap().signal;
        prop_assert!(sparse.max_abs_diff(&dense).unwrap() < 1e-3);
    }

    /// Walks never exceed their message budget and report consistent
    /// outcomes, for any policy and fanout.
    #[test]
    fn walk_budget_invariants(
        seed in 0u64..300,
        n in 10u32..60,
        ttl in 1u32..20,
        fanout in 1usize..4,
        policy_idx in 0usize..4,
    ) {
        let policy = [
            PolicyKind::PprGreedy,
            PolicyKind::RandomWalk,
            PolicyKind::DegreeBiased,
            PolicyKind::Hybrid { epsilon: 0.3 },
        ][policy_idx];
        let g = graph_from_seed(seed, n);
        let corpus = corpus();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x1234);
        let words: Vec<WordId> = (0..5).map(WordId::new).collect();
        let placement = Placement::uniform(&g, &words, &mut rng).unwrap();
        let cfg = SchemeConfig::builder()
            .ttl(ttl)
            .fanout(fanout)
            .policy(policy)
            .build()
            .unwrap();
        let net = SearchNetwork::build(&g, corpus, &placement, &cfg, &mut rng).unwrap();
        let out = net
            .query(corpus.embedding(WordId::new(10)), NodeId::new(0), &mut rng)
            .unwrap();
        // Fanout spawns walks at the origin only: at most fanout * ttl
        // forwards in total (flooding is a separate policy).
        let budget = fanout as u64 * u64::from(ttl);
        prop_assert!(u64::from(out.hops) <= budget,
            "hops {} exceed budget {budget}", out.hops);
        prop_assert!(out.unique_nodes <= g.num_nodes());
        prop_assert_eq!(out.path.len(), out.unique_nodes);
        // Results reference placed documents with hops within TTL.
        for f in &out.results {
            prop_assert!(f.doc < words.len());
            prop_assert!(f.hop <= ttl);
        }
    }

    /// Flooding visits exactly the BFS ball of radius TTL on any graph.
    #[test]
    fn flooding_covers_bfs_ball(seed in 0u64..300, n in 8u32..50, ttl in 1u32..5) {
        let g = graph_from_seed(seed, n);
        let corpus = corpus();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x777);
        let words = vec![WordId::new(0)];
        let placement = Placement::uniform(&g, &words, &mut rng).unwrap();
        let cfg = SchemeConfig::builder()
            .ttl(ttl)
            .policy(PolicyKind::Flooding)
            .build()
            .unwrap();
        let net = SearchNetwork::build(&g, corpus, &placement, &cfg, &mut rng).unwrap();
        let start = NodeId::new(0);
        let out = net
            .query(corpus.embedding(WordId::new(3)), start, &mut rng)
            .unwrap();
        let ball = gdsearch_graph::algo::bfs::distances(&g, start)
            .iter()
            .filter(|d| d.map(|d| d <= ttl).unwrap_or(false))
            .count();
        prop_assert_eq!(out.unique_nodes, ball);
    }

    /// Scheme construction is deterministic: same seed, same embeddings.
    #[test]
    fn scheme_build_deterministic(seed in 0u64..200, n in 5u32..40) {
        let g = graph_from_seed(seed, n);
        let corpus = corpus();
        let words: Vec<WordId> = (0..4).map(WordId::new).collect();
        let build = || {
            let mut rng = StdRng::seed_from_u64(seed);
            let placement = Placement::uniform(&g, &words, &mut rng).unwrap();
            SearchNetwork::build(&g, corpus, &placement, &SchemeConfig::default(), &mut rng)
                .unwrap()
                .embeddings()
                .clone()
        };
        prop_assert_eq!(build(), build());
    }
}
