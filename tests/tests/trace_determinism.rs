//! The query-path flight recorder must be a *deterministic* record:
//! recorded at sequential driver points, its event log is bit-identical
//! across worker-thread counts for the same workload — same events,
//! same order, same stamps. Same harness as `gdsearch-obs`'s registry
//! thread-determinism proptests, lifted to the full scheme pipeline
//! (`build_observed` + `query_observed` over the sharded engine).

use gdsearch::{Placement, SchemeConfig, SearchNetwork};
use gdsearch_embed::querygen::{self, QueryGenConfig};
use gdsearch_embed::synthetic::SyntheticCorpus;
use gdsearch_graph::{generators, NodeId};
use gdsearch_obs::{MetricsRegistry, Observer, TraceLog};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const THREADS: [usize; 3] = [1, 2, 4];

/// One full observed run: build the network and serve a few queries,
/// recording the flight-recorder log and the metrics registry.
fn run_once(n: u32, shards: usize, threads: usize, seed: u64) -> (TraceLog, MetricsRegistry) {
    let graph = generators::ring(n).expect("ring builds");
    let corpus = SyntheticCorpus::builder()
        .vocab_size(120)
        .dim(12)
        .num_topics(6)
        .generate(&mut StdRng::seed_from_u64(seed))
        .expect("corpus builds");
    let queries = querygen::generate(
        &corpus,
        QueryGenConfig {
            num_queries: 4,
            min_cosine: 0.4,
        },
        &mut StdRng::seed_from_u64(seed ^ 1),
    )
    .expect("queries generate");
    let mut words: Vec<_> = queries.pairs().iter().map(|p| p.gold).collect();
    words.extend(queries.irrelevant().iter().copied().take(6));
    let placement = Placement::uniform(&graph, &words, &mut StdRng::seed_from_u64(seed ^ 2))
        .expect("placement fits");
    let config = SchemeConfig::builder()
        .engine(gdsearch::DiffusionEngine::sharded(shards, threads))
        .build()
        .expect("valid config");

    let mut log = TraceLog::new();
    let mut registry = MetricsRegistry::new();
    let mut obs = Observer::new(Some(&mut registry), None).with_trace(&mut log);
    let network = SearchNetwork::build_observed(
        &graph,
        &corpus,
        &placement,
        &config,
        &mut StdRng::seed_from_u64(seed ^ 3),
        &mut obs,
    )
    .expect("network builds");
    for (qi, pair) in queries.pairs().iter().enumerate() {
        obs.set_query(qi as u64 + 1);
        let start = NodeId::new((qi as u32 * 13) % n);
        network
            .query_observed(
                corpus.embedding(pair.query),
                start,
                &mut StdRng::seed_from_u64(seed ^ (100 + qi as u64)),
                &mut obs,
            )
            .expect("query runs");
    }
    (log, registry)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn trace_log_is_thread_invariant(
        n in 16u32..64,
        shards in 1usize..4,
        seed in 0u64..1000,
    ) {
        let mut runs = THREADS.iter().map(|&threads| run_once(n, shards, threads, seed));
        let (first_log, first_reg) = runs.next().expect("three thread counts");
        for (log, reg) in runs {
            prop_assert_eq!(&log, &first_log, "trace must be bit-identical across threads");
            prop_assert_eq!(&reg, &first_reg);
        }
        // The trace actually recorded the serving pipeline.
        prop_assert_eq!(first_log.count_phase("scheme.personalization"), 2);
        prop_assert_eq!(first_log.count_phase("scheme.diffusion"), 2);
        prop_assert_eq!(first_log.count_phase("scheme.walk"), 8);
        // Query ids 1..=4 each own one walk begin/end pair.
        for q in 1..=4u64 {
            let walk_events = first_log
                .events()
                .iter()
                .filter(|e| e.query_id == q && e.phase == "scheme.walk")
                .count();
            prop_assert_eq!(walk_events, 2);
        }
    }
}
